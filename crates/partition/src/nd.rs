//! Recursive nested dissection producing the supernodal elimination order.

use crate::bisect::{bisect, BisectOptions};
use crate::separator::{vertex_separator, Part};
use apsp_etree::SchedTree;
use apsp_graph::{Csr, Permutation};

/// Options for [`nested_dissection`].
#[derive(Clone, Copy, Debug, Default)]
pub struct NdOptions {
    /// Options forwarded to every bisection call (the seed is mixed with
    /// the tree-node label so recursive calls decorrelate).
    pub bisect: BisectOptions,
}

/// A nested-dissection ordering shaped for the scheduling tree:
/// supernode `k` (1-based bottom-up level-order label) owns the vertex
/// range `offset(k) .. offset(k) + size(k)` of the **new** numbering.
#[derive(Clone, Debug)]
pub struct NdOrdering {
    /// The scheduling tree (`N = 2^h − 1` supernodes).
    pub tree: SchedTree,
    /// Vertex permutation: `perm.to_new(old) = new`.
    pub perm: Permutation,
    /// Vertex count of each supernode, indexed by `label − 1`.
    pub supernode_sizes: Vec<usize>,
}

impl NdOrdering {
    /// Start of supernode `k`'s vertex range in the new numbering.
    pub fn offset(&self, k: usize) -> usize {
        self.supernode_sizes[..k - 1].iter().sum()
    }

    /// All supernode offsets (index `label − 1`), plus the total as a
    /// final sentinel entry.
    pub fn offsets(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.supernode_sizes.len() + 1);
        let mut acc = 0usize;
        out.push(0);
        for &s in &self.supernode_sizes {
            acc += s;
            out.push(acc);
        }
        out
    }

    /// The supernode label owning new vertex index `idx`.
    pub fn supernode_of_new(&self, idx: usize) -> usize {
        let offsets = self.offsets();
        debug_assert!(idx < offsets[offsets.len() - 1]);
        // label = position of the last offset ≤ idx
        match offsets.binary_search(&idx) {
            Ok(mut k) => {
                while self.supernode_sizes[k] == 0 {
                    k += 1;
                }
                k + 1
            }
            Err(ins) => ins,
        }
    }

    /// The supernode label owning **old** (input-graph) vertex `u`.
    pub fn supernode_of_old(&self, u: usize) -> usize {
        self.supernode_of_new(self.perm.to_new(u))
    }

    /// Sizes of the level-`l` supernodes (the level-`l` separators for
    /// `l ≥ 2`, the leaf partitions for `l = 1`).
    pub fn level_sizes(&self, l: u32) -> Vec<usize> {
        self.tree.level_nodes(l).map(|k| self.supernode_sizes[k - 1]).collect()
    }

    /// Largest separator size across all non-leaf levels — the `|S|` that
    /// enters the paper's cost formulas (the top separator dominates for
    /// monotone separator families, §5.4.1).
    pub fn max_separator(&self) -> usize {
        (2..=self.tree.height()).flat_map(|l| self.level_sizes(l)).max().unwrap_or(0)
    }

    /// The size of the top-level (root) separator.
    pub fn top_separator(&self) -> usize {
        self.supernode_sizes[self.tree.num_supernodes() - 1]
    }

    /// Validates the ordering against the input graph:
    /// * sizes sum to `n`;
    /// * the permutation is consistent;
    /// * **cousin supernodes share no edge** — the §4.1 structural property
    ///   every communication saving rests on.
    pub fn validate(&self, g: &Csr) -> Result<(), String> {
        let n: usize = self.supernode_sizes.iter().sum();
        if n != g.n() {
            return Err(format!("sizes sum to {n}, graph has {} vertices", g.n()));
        }
        if self.perm.len() != g.n() {
            return Err("permutation length mismatch".into());
        }
        for (u, v, _) in g.edges() {
            let (su, sv) = (self.supernode_of_old(u), self.supernode_of_old(v));
            if !self.tree.related(su, sv) {
                return Err(format!("edge ({u},{v}) joins cousin supernodes {su} and {sv}"));
            }
        }
        Ok(())
    }
}

/// Computes a nested-dissection ordering with exactly `h` levels.
///
/// Level `h` holds the top separator, level `1` the `2^{h−1}` leaf parts.
/// Empty supernodes (size 0) are legal and arise when a region becomes
/// too small to keep splitting.
///
/// ```
/// use apsp_graph::generators::{grid2d, WeightKind};
/// use apsp_partition::{nested_dissection, NdOptions};
///
/// let g = grid2d(8, 8, WeightKind::Unit, 0);
/// let nd = nested_dissection(&g, 3, &NdOptions::default());
/// nd.validate(&g).unwrap();                 // cousins share no edges
/// assert!(nd.top_separator() <= 16);        // Θ(√n) separator on a mesh
/// assert_eq!(nd.supernode_sizes.iter().sum::<usize>(), 64);
/// ```
pub fn nested_dissection(g: &Csr, h: u32, opts: &NdOptions) -> NdOrdering {
    let tree = SchedTree::new(h);
    let n_super = tree.num_supernodes();
    let mut supernode_vertices: Vec<Vec<usize>> = vec![Vec::new(); n_super];

    // explicit stack: (vertex ids, level, index-in-level)
    let all: Vec<usize> = (0..g.n()).collect();
    let mut stack = vec![(all, h, 0usize)];
    while let Some((vertices, level, idx)) = stack.pop() {
        let label = tree.level_offset(level) + idx + 1;
        if level == 1 {
            supernode_vertices[label - 1] = vertices;
            continue;
        }
        if vertices.is_empty() {
            stack.push((Vec::new(), level - 1, 2 * idx));
            stack.push((Vec::new(), level - 1, 2 * idx + 1));
            continue;
        }
        let (sub, ids) = g.induced_subgraph(&vertices);
        let mut bopts = opts.bisect;
        bopts.seed ^= (label as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let bisection = bisect(&sub, &bopts);
        let part = vertex_separator(&sub, &bisection.side);
        let mut sep = Vec::new();
        let mut v1 = Vec::new();
        let mut v2 = Vec::new();
        for (local, p) in part.iter().enumerate() {
            match p {
                Part::Sep => sep.push(ids[local]),
                Part::V1 => v1.push(ids[local]),
                Part::V2 => v2.push(ids[local]),
            }
        }
        supernode_vertices[label - 1] = sep;
        stack.push((v1, level - 1, 2 * idx));
        stack.push((v2, level - 1, 2 * idx + 1));
    }

    finish(tree, supernode_vertices)
}

/// Assembles an [`NdOrdering`] from per-supernode vertex lists (shared by
/// the multilevel and the geometric dissections).
pub(crate) fn finish(tree: SchedTree, supernode_vertices: Vec<Vec<usize>>) -> NdOrdering {
    let sizes: Vec<usize> = supernode_vertices.iter().map(|v| v.len()).collect();
    let order: Vec<usize> = supernode_vertices.into_iter().flatten().collect();
    NdOrdering { tree, perm: Permutation::from_order(order), supernode_sizes: sizes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::generators::{self, WeightKind};

    #[test]
    fn fig1_example_reproduced() {
        // the paper's Fig. 1 graph: separator {6}, sides {0,1,2} and {3,4,5}
        let g = generators::paper_fig1();
        let nd = nested_dissection(&g, 2, &NdOptions::default());
        nd.validate(&g).unwrap();
        assert_eq!(nd.tree.num_supernodes(), 3);
        assert_eq!(nd.supernode_sizes[2], 1, "top separator is the single cut vertex");
        assert_eq!(nd.supernode_sizes[0] + nd.supernode_sizes[1], 6);
        assert_eq!(nd.supernode_of_old(6), 3);
    }

    #[test]
    fn grid_nd_small_separators() {
        let g = generators::grid2d(12, 12, WeightKind::Unit, 0);
        let nd = nested_dissection(&g, 3, &NdOptions::default());
        nd.validate(&g).unwrap();
        // top separator of a 12×12 grid should be near 12, certainly << n
        assert!(nd.top_separator() <= 3 * 12, "top separator {}", nd.top_separator());
        assert!(nd.max_separator() <= 3 * 12);
        // leaves hold most of the graph
        let leaf_total: usize = nd.level_sizes(1).iter().sum();
        assert!(leaf_total >= 144 / 2, "leaf total {leaf_total}");
    }

    #[test]
    fn heights_one_and_two() {
        let g = generators::grid2d(4, 4, WeightKind::Unit, 0);
        let nd1 = nested_dissection(&g, 1, &NdOptions::default());
        nd1.validate(&g).unwrap();
        assert_eq!(nd1.supernode_sizes, vec![16]);
        let nd2 = nested_dissection(&g, 2, &NdOptions::default());
        nd2.validate(&g).unwrap();
        assert_eq!(nd2.supernode_sizes.iter().sum::<usize>(), 16);
    }

    #[test]
    fn deep_tree_on_small_graph_has_empty_supernodes() {
        let g = generators::path(5, WeightKind::Unit, 0);
        let nd = nested_dissection(&g, 4, &NdOptions::default());
        nd.validate(&g).unwrap();
        assert_eq!(nd.supernode_sizes.iter().sum::<usize>(), 5);
        assert!(nd.supernode_sizes.contains(&0));
    }

    #[test]
    fn disconnected_graph_ordering_is_valid() {
        let mut b = apsp_graph::GraphBuilder::new(20);
        for k in 0..4 {
            for i in 0..4 {
                b.add_edge(5 * k + i, 5 * k + i + 1, 1.0);
            }
        }
        let g = b.build();
        let nd = nested_dissection(&g, 3, &NdOptions::default());
        nd.validate(&g).unwrap();
    }

    #[test]
    fn offsets_and_lookup_agree() {
        let g = generators::grid2d(8, 8, WeightKind::Unit, 0);
        let nd = nested_dissection(&g, 3, &NdOptions::default());
        let offsets = nd.offsets();
        assert_eq!(offsets.len(), nd.tree.num_supernodes() + 1);
        assert_eq!(*offsets.last().unwrap(), 64);
        for idx in 0..64 {
            let k = nd.supernode_of_new(idx);
            assert!(offsets[k - 1] <= idx && idx < offsets[k], "idx {idx} k {k}");
        }
    }

    #[test]
    fn validate_rejects_cousin_edges() {
        // hand-build a WRONG ordering for a path: put adjacent vertices in
        // cousin leaves
        let g = generators::path(4, WeightKind::Unit, 0);
        let bad = NdOrdering {
            tree: SchedTree::new(2),
            perm: Permutation::identity(4),
            supernode_sizes: vec![2, 2, 0],
        };
        // vertices {0,1} leaf 1, {2,3} leaf 2 — but edge (1,2) joins cousins
        assert!(bad.validate(&g).is_err());
    }

    #[test]
    fn random_graphs_always_validate() {
        for seed in 0..8 {
            let g = generators::connected_gnp(60, 0.05, WeightKind::Unit, seed);
            for h in 1..=4 {
                let nd = nested_dissection(&g, h, &NdOptions::default());
                nd.validate(&g).unwrap_or_else(|e| panic!("seed {seed} h {h}: {e}"));
            }
        }
    }
}
