//! Heavy-edge matching coarsening (phase 1 of the multilevel scheme).

use crate::work::WorkGraph;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// One coarsening step: a matching and the resulting coarse graph.
#[derive(Clone, Debug)]
pub struct CoarseLevel {
    /// The coarse graph.
    pub graph: WorkGraph,
    /// For every fine vertex, its coarse vertex id.
    pub map: Vec<u32>,
}

/// Computes a heavy-edge matching and contracts it.
///
/// Vertices are visited in a seeded random order; each unmatched vertex
/// matches its unmatched neighbour with the heaviest connecting edge
/// (ties broken by smaller id). Unmatched vertices survive as singletons.
pub fn coarsen_step(g: &WorkGraph, seed: u64) -> CoarseLevel {
    let n = g.n();
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);

    let mut mate = vec![usize::MAX; n];
    for &u in &order {
        if mate[u] != usize::MAX {
            continue;
        }
        let mut best: Option<(u64, usize)> = None;
        for (&v, &w) in g.neighbors(u).iter().zip(g.edge_weights(u)) {
            let v = v as usize;
            if mate[v] != usize::MAX || v == u {
                continue;
            }
            let cand = (w, usize::MAX - v); // heavier first, then smaller id
            if best.is_none_or(|b| cand > (b.0, usize::MAX - b.1)) {
                best = Some((w, v));
            }
        }
        if let Some((_, v)) = best {
            mate[u] = v;
            mate[v] = u;
        } else {
            mate[u] = u; // singleton
        }
    }

    // assign coarse ids
    let mut map = vec![u32::MAX; n];
    let mut next = 0u32;
    for u in 0..n {
        if map[u] != u32::MAX {
            continue;
        }
        map[u] = next;
        let v = mate[u];
        if v != u && v != usize::MAX {
            map[v] = next;
        }
        next += 1;
    }
    let cn = next as usize;

    // coarse vertex weights
    let mut vwt = vec![0u64; cn];
    for u in 0..n {
        vwt[map[u] as usize] += g.vwt[u];
    }
    // coarse edges
    let mut edges = Vec::new();
    for u in 0..n {
        for (&v, &w) in g.neighbors(u).iter().zip(g.edge_weights(u)) {
            let (cu, cv) = (map[u], map[v as usize]);
            if cu < cv {
                edges.push((cu, cv, w));
            }
        }
    }
    CoarseLevel { graph: WorkGraph::from_edges(cn, &edges, vwt), map }
}

/// Coarsens repeatedly until at most `target_n` vertices remain or progress
/// stalls (shrink factor under 10%). Returns the hierarchy, fine → coarse.
pub fn coarsen(g: &WorkGraph, target_n: usize, seed: u64) -> Vec<CoarseLevel> {
    let mut levels = Vec::new();
    let mut current = g.clone();
    let mut round = 0u64;
    while current.n() > target_n {
        let step = coarsen_step(&current, seed ^ (0x9e37_79b9 + round));
        let shrunk = step.graph.n();
        let stalled = shrunk as f64 > 0.95 * current.n() as f64;
        current = step.graph.clone();
        levels.push(step);
        round += 1;
        if stalled {
            break;
        }
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::generators::{self, WeightKind};

    #[test]
    fn step_preserves_total_vertex_weight() {
        let g = generators::grid2d(6, 6, WeightKind::Unit, 0);
        let w = WorkGraph::from_csr(&g);
        let step = coarsen_step(&w, 1);
        assert_eq!(step.graph.total_vwt(), 36);
        assert!(step.graph.n() < w.n());
        assert!(step.graph.n() >= w.n() / 2);
        // map is a surjection onto 0..cn
        let mut hit = vec![false; step.graph.n()];
        for &c in &step.map {
            hit[c as usize] = true;
        }
        assert!(hit.iter().all(|&b| b));
    }

    #[test]
    fn coarse_edges_reflect_fine_adjacency() {
        let g = generators::path(8, WeightKind::Unit, 0);
        let w = WorkGraph::from_csr(&g);
        let step = coarsen_step(&w, 3);
        // any fine edge maps either inside a coarse vertex or to a coarse edge
        for u in 0..8usize {
            for &v in g.neighbors(u) {
                let (cu, cv) = (step.map[u], step.map[v as usize]);
                if cu != cv {
                    assert!(
                        step.graph.neighbors(cu as usize).contains(&cv),
                        "missing coarse edge {cu}-{cv}"
                    );
                }
            }
        }
    }

    #[test]
    fn full_coarsening_reaches_target() {
        let g = generators::grid2d(16, 16, WeightKind::Unit, 0);
        let w = WorkGraph::from_csr(&g);
        let levels = coarsen(&w, 24, 7);
        assert!(!levels.is_empty());
        let last = &levels.last().unwrap().graph;
        assert!(last.n() <= 96, "coarsening stalled too early: {}", last.n());
        assert_eq!(last.total_vwt(), 256);
    }

    #[test]
    fn coarsening_keeps_connectivity() {
        // connected fine graph => connected coarse graph
        let g = generators::grid2d(8, 8, WeightKind::Unit, 0);
        let w = WorkGraph::from_csr(&g);
        let step = coarsen_step(&w, 9);
        // BFS over coarse graph
        let cg = &step.graph;
        let mut seen = vec![false; cg.n()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for &v in cg.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    count += 1;
                    stack.push(v as usize);
                }
            }
        }
        assert_eq!(count, cg.n());
    }
}
