//! Exact geometric nested dissection for 2-D meshes.
//!
//! For a `rows × cols` grid (vertex `(r, c)` has id `r·cols + c`, matching
//! [`apsp_graph::generators::grid2d`]) the optimal dissection strategy is
//! known in closed form: cut the longer dimension down the middle. This
//! gives exact `|S| = Θ(√n)` separators with perfect balance, which the
//! scaling experiments use to keep the separator term clean.

use crate::nd::{finish, NdOrdering};
use apsp_etree::SchedTree;

/// A sub-rectangle `rows ∈ [r0, r1)`, `cols ∈ [c0, c1)`.
#[derive(Clone, Copy, Debug)]
struct Rect {
    r0: usize,
    r1: usize,
    c0: usize,
    c1: usize,
}

impl Rect {
    fn height(&self) -> usize {
        self.r1 - self.r0
    }
    fn width(&self) -> usize {
        self.c1 - self.c0
    }
    fn cells(&self, cols: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.height() * self.width());
        for r in self.r0..self.r1 {
            for c in self.c0..self.c1 {
                out.push(r * cols + c);
            }
        }
        out
    }
}

/// Exact geometric nested dissection of a `rows × cols` grid into `h`
/// levels. Separators are full grid lines; leaves are the remaining
/// sub-rectangles.
pub fn grid_nd(rows: usize, cols: usize, h: u32) -> NdOrdering {
    let tree = SchedTree::new(h);
    let mut supernode_vertices: Vec<Vec<usize>> = vec![Vec::new(); tree.num_supernodes()];
    let mut stack = vec![(Rect { r0: 0, r1: rows, c0: 0, c1: cols }, h, 0usize)];
    while let Some((rect, level, idx)) = stack.pop() {
        let label = tree.level_offset(level) + idx + 1;
        if level == 1 {
            supernode_vertices[label - 1] = rect.cells(cols);
            continue;
        }
        if rect.height() == 0 || rect.width() == 0 {
            stack.push((rect, level - 1, 2 * idx));
            stack.push((Rect { r0: 0, r1: 0, c0: 0, c1: 0 }, level - 1, 2 * idx + 1));
            continue;
        }
        if rect.width() >= rect.height() {
            // cut the middle column
            let mid = rect.c0 + rect.width() / 2;
            let sep = Rect { c0: mid, c1: mid + 1, ..rect };
            supernode_vertices[label - 1] = sep.cells(cols);
            stack.push((Rect { c1: mid, ..rect }, level - 1, 2 * idx));
            stack.push((Rect { c0: mid + 1, ..rect }, level - 1, 2 * idx + 1));
        } else {
            // cut the middle row
            let mid = rect.r0 + rect.height() / 2;
            let sep = Rect { r0: mid, r1: mid + 1, ..rect };
            supernode_vertices[label - 1] = sep.cells(cols);
            stack.push((Rect { r1: mid, ..rect }, level - 1, 2 * idx));
            stack.push((Rect { r0: mid + 1, ..rect }, level - 1, 2 * idx + 1));
        }
    }
    finish(tree, supernode_vertices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::generators::{self, WeightKind};

    #[test]
    fn separators_are_grid_lines() {
        let (rows, cols) = (9, 9);
        let g = generators::grid2d(rows, cols, WeightKind::Unit, 0);
        let nd = grid_nd(rows, cols, 3);
        nd.validate(&g).unwrap();
        // top separator: one column of 9
        assert_eq!(nd.top_separator(), 9);
        // level 2 separators: a row of each 9×4 half = 4 each
        assert_eq!(nd.level_sizes(2), vec![4, 4]);
        // total preserved
        assert_eq!(nd.supernode_sizes.iter().sum::<usize>(), 81);
    }

    #[test]
    fn deep_dissection_stays_valid() {
        let (rows, cols) = (17, 17);
        let g = generators::grid2d(rows, cols, WeightKind::Unit, 0);
        for h in 1..=5 {
            let nd = grid_nd(rows, cols, h);
            nd.validate(&g).unwrap_or_else(|e| panic!("h={h}: {e}"));
        }
    }

    #[test]
    fn rectangle_cuts_longer_side() {
        let g = generators::grid2d(4, 16, WeightKind::Unit, 0);
        let nd = grid_nd(4, 16, 2);
        nd.validate(&g).unwrap();
        // a column cut of height 4, not a row cut of width 16
        assert_eq!(nd.top_separator(), 4);
    }

    #[test]
    fn balance_is_tight_on_power_of_two_plus_one() {
        let nd = grid_nd(17, 17, 2);
        let leaves = nd.level_sizes(1);
        assert_eq!(leaves.len(), 2);
        assert_eq!(leaves[0], leaves[1], "two 17×8 halves");
    }

    #[test]
    fn max_separator_scales_like_sqrt_n() {
        for side in [8usize, 16, 32] {
            let nd = grid_nd(side, side, 4);
            assert!(nd.max_separator() <= side, "side {side}: separator {}", nd.max_separator());
        }
    }

    #[test]
    fn tiny_grids_and_degenerate_trees() {
        let g = generators::grid2d(2, 2, WeightKind::Unit, 0);
        for h in 1..=4 {
            let nd = grid_nd(2, 2, h);
            nd.validate(&g).unwrap();
            assert_eq!(nd.supernode_sizes.iter().sum::<usize>(), 4);
        }
        let g1 = generators::grid2d(1, 1, WeightKind::Unit, 0);
        let nd1 = grid_nd(1, 1, 3);
        nd1.validate(&g1).unwrap();
    }
}
