//! Multilevel graph bisection: coarsen → grow → uncoarsen + FM refine.

use crate::coarsen::coarsen;
use crate::work::WorkGraph;
use std::collections::BinaryHeap;

/// Tuning knobs for [`bisect`].
#[derive(Clone, Copy, Debug)]
pub struct BisectOptions {
    /// RNG seed (matchings and tie-breaks).
    pub seed: u64,
    /// Allowed imbalance: each side's vertex weight stays within
    /// `(1/2 ± balance_eps) · total`.
    pub balance_eps: f64,
    /// Stop coarsening at this many vertices.
    pub coarsen_target: usize,
    /// Maximum Fiduccia–Mattheyses passes per uncoarsening level.
    pub fm_passes: usize,
}

impl Default for BisectOptions {
    fn default() -> Self {
        BisectOptions { seed: 0, balance_eps: 0.2, coarsen_target: 48, fm_passes: 6 }
    }
}

/// A two-way partition: `side[u] ∈ {0, 1}` and the resulting edge-cut
/// weight.
#[derive(Clone, Debug)]
pub struct Bisection {
    /// Side of each vertex.
    pub side: Vec<u8>,
    /// Total weight of edges crossing the partition.
    pub cut: u64,
}

/// Edge-cut weight of a side assignment.
pub fn cut_weight(g: &WorkGraph, side: &[u8]) -> u64 {
    let mut cut = 0;
    for u in 0..g.n() {
        for (&v, &w) in g.neighbors(u).iter().zip(g.edge_weights(u)) {
            if (v as usize) > u && side[u] != side[v as usize] {
                cut += w;
            }
        }
    }
    cut
}

/// BFS region growing from a pseudo-peripheral vertex: side 0 collects
/// vertices in BFS order until it holds at least half of the total weight.
/// Extra components are swept afterwards, smaller side first.
fn grow_initial(g: &WorkGraph, seed: u64) -> Vec<u8> {
    let n = g.n();
    let total = g.total_vwt();
    let mut side = vec![1u8; n];
    if n == 0 {
        return side;
    }
    let start = g.pseudo_peripheral((seed as usize) % n);
    let mut in0 = 0u64;
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    visited[start] = true;
    while let Some(u) = queue.pop_front() {
        if in0 * 2 >= total {
            break;
        }
        side[u] = 0;
        in0 += g.vwt[u];
        for &v in g.neighbors(u) {
            let v = v as usize;
            if !visited[v] {
                visited[v] = true;
                queue.push_back(v);
            }
        }
        // disconnected graphs: restart BFS from an unvisited vertex
        if queue.is_empty() && in0 * 2 < total {
            if let Some(next) = (0..n).find(|&x| !visited[x]) {
                visited[next] = true;
                queue.push_back(next);
            }
        }
    }
    side
}

/// One Fiduccia–Mattheyses pass with a lazy-invalidation gain heap.
/// Returns `true` when the cut improved.
fn fm_pass(g: &WorkGraph, side: &mut [u8], balance_eps: f64) -> bool {
    let n = g.n();
    let total = g.total_vwt();
    // minimum weight either side must keep: the balance envelope, and never
    // less than one vertex (a collapsed side is not a bisection)
    let lo = (((0.5 - balance_eps) * total as f64).ceil().max(0.0) as u64).max(if n >= 2 {
        1
    } else {
        0
    });
    let mut weight = [0u64; 2];
    for u in 0..n {
        weight[side[u] as usize] += g.vwt[u];
    }
    // gain(v) = external − internal incident edge weight
    let gain_of = |side: &[u8], v: usize| -> i64 {
        let mut gain = 0i64;
        for (&nbr, &w) in g.neighbors(v).iter().zip(g.edge_weights(v)) {
            if side[nbr as usize] == side[v] {
                gain -= w as i64;
            } else {
                gain += w as i64;
            }
        }
        gain
    };
    let mut stamp = vec![0u32; n]; // bump to invalidate queued entries
    let mut locked = vec![false; n];
    let mut heap: BinaryHeap<(i64, usize, u32)> =
        (0..n).map(|v| (gain_of(side, v), v, 0)).collect();

    let mut cur_cut = cut_weight(g, side) as i64;
    let best_start = cur_cut;
    let mut best_cut = cur_cut;
    let mut moves: Vec<usize> = Vec::new();
    let mut best_len = 0usize;

    while let Some((gain, v, s)) = heap.pop() {
        if locked[v] || s != stamp[v] {
            continue;
        }
        let from = side[v] as usize;
        if weight[from] < g.vwt[v] + lo {
            // balance would break; skip (vertex may be re-tried after mass
            // moves the other way, so just drop this entry)
            continue;
        }
        // apply
        side[v] ^= 1;
        weight[from] -= g.vwt[v];
        weight[1 - from] += g.vwt[v];
        locked[v] = true;
        cur_cut -= gain;
        moves.push(v);
        if cur_cut < best_cut {
            best_cut = cur_cut;
            best_len = moves.len();
        }
        for &nbr in g.neighbors(v) {
            let nbr = nbr as usize;
            if !locked[nbr] {
                stamp[nbr] += 1;
                heap.push((gain_of(side, nbr), nbr, stamp[nbr]));
            }
        }
    }
    // roll back past the best prefix
    for &v in moves.iter().skip(best_len) {
        side[v] ^= 1;
    }
    best_cut < best_start
}

/// Multilevel bisection of a work graph.
pub fn bisect_work(g: &WorkGraph, opts: &BisectOptions) -> Bisection {
    let n = g.n();
    if n <= 1 {
        return Bisection { side: vec![0; n], cut: 0 };
    }
    let hierarchy = coarsen(g, opts.coarsen_target, opts.seed);
    let coarsest: &WorkGraph = hierarchy.last().map(|lvl| &lvl.graph).unwrap_or(g);
    let mut side = grow_initial(coarsest, opts.seed);
    for _ in 0..opts.fm_passes {
        if !fm_pass(coarsest, &mut side, opts.balance_eps) {
            break;
        }
    }
    // uncoarsen: project through the hierarchy, refining at each level
    for lvl_idx in (0..hierarchy.len()).rev() {
        let fine: &WorkGraph = if lvl_idx == 0 { g } else { &hierarchy[lvl_idx - 1].graph };
        let map = &hierarchy[lvl_idx].map;
        let mut fine_side = vec![0u8; fine.n()];
        for u in 0..fine.n() {
            fine_side[u] = side[map[u] as usize];
        }
        side = fine_side;
        for _ in 0..opts.fm_passes {
            if !fm_pass(fine, &mut side, opts.balance_eps) {
                break;
            }
        }
    }
    let cut = cut_weight(g, &side);
    Bisection { side, cut }
}

/// Multilevel bisection of a plain CSR graph (unit weights).
pub fn bisect(g: &apsp_graph::Csr, opts: &BisectOptions) -> Bisection {
    bisect_work(&WorkGraph::from_csr(g), opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::generators::{self, WeightKind};

    fn balance(g: &WorkGraph, side: &[u8]) -> f64 {
        let total = g.total_vwt() as f64;
        let w0: u64 = (0..g.n()).filter(|&u| side[u] == 0).map(|u| g.vwt[u]).sum();
        w0 as f64 / total
    }

    #[test]
    fn grid_bisection_is_balanced_with_small_cut() {
        let g = generators::grid2d(12, 12, WeightKind::Unit, 0);
        let w = WorkGraph::from_csr(&g);
        let b = bisect(&g, &BisectOptions::default());
        let frac = balance(&w, &b.side);
        assert!((0.3..=0.7).contains(&frac), "balance {frac}");
        // a 12×12 grid has a 12-edge bisector; allow heuristic slack
        assert!(b.cut <= 30, "cut {}", b.cut);
        assert_eq!(b.cut, cut_weight(&w, &b.side));
    }

    #[test]
    fn path_bisection_is_one_cut() {
        let g = generators::path(64, WeightKind::Unit, 0);
        let b = bisect(&g, &BisectOptions::default());
        assert!(b.cut <= 3, "cut {}", b.cut);
    }

    #[test]
    fn single_vertex_and_empty() {
        let g = apsp_graph::Csr::edgeless(1);
        let b = bisect(&g, &BisectOptions::default());
        assert_eq!(b.side, vec![0]);
        let g0 = apsp_graph::Csr::edgeless(0);
        let b0 = bisect(&g0, &BisectOptions::default());
        assert!(b0.side.is_empty());
    }

    #[test]
    fn two_vertices_split() {
        let g = apsp_graph::GraphBuilder::new(2).edge(0, 1, 1.0).build();
        let b = bisect(&g, &BisectOptions::default());
        assert_ne!(b.side[0], b.side[1]);
        assert_eq!(b.cut, 1);
    }

    #[test]
    fn disconnected_components_still_balanced() {
        // two 4×4 grids with no connection: perfect 0-cut bisection exists
        let mut builder = apsp_graph::GraphBuilder::new(32);
        let grid = generators::grid2d(4, 4, WeightKind::Unit, 0);
        for (u, v, w) in grid.edges() {
            builder.add_edge(u, v, w);
            builder.add_edge(u + 16, v + 16, w);
        }
        let g = builder.build();
        let b = bisect(&g, &BisectOptions::default());
        let w = WorkGraph::from_csr(&g);
        let frac = balance(&w, &b.side);
        assert!((0.3..=0.7).contains(&frac), "balance {frac}");
        assert!(b.cut <= 8, "cut {}", b.cut);
    }

    #[test]
    fn refinement_improves_or_keeps_cut() {
        let g = generators::connected_gnp(120, 0.04, WeightKind::Unit, 5);
        let w = WorkGraph::from_csr(&g);
        // raw grown partition on the full graph
        let raw = grow_initial(&w, 0);
        let raw_cut = cut_weight(&w, &raw);
        let refined = bisect(&g, &BisectOptions::default());
        assert!(refined.cut <= raw_cut.max(1) * 2, "{} vs {}", refined.cut, raw_cut);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::grid2d(10, 10, WeightKind::Unit, 0);
        let a = bisect(&g, &BisectOptions::default());
        let b = bisect(&g, &BisectOptions::default());
        assert_eq!(a.side, b.side);
    }
}
