#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of the proptest 1.x API its test suites use:
//! [`Strategy`] with `prop_map` / `prop_flat_map` / `prop_filter_map`,
//! range and tuple strategies, [`Just`], `collection::vec`,
//! `option::weighted`, `bool::ANY`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from upstream proptest, by design:
//!
//! * **No shrinking.** A failing case reports the generated inputs via
//!   `Debug` in the assertion message but is not minimized.
//! * **Deterministic seeding.** Each `#[test]` derives its RNG seed from
//!   the test's own name, so failures reproduce exactly on re-run with
//!   no persistence files.
//!
//! Both are acceptable trade-offs for an offline CI: the tests still
//! explore `cases` random inputs per run, and a red test is still
//! exactly reproducible.

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The deterministic RNG driving generation (SplitMix64).
pub mod test_runner {
    /// Deterministic per-test random number generator.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the RNG from a test name (FNV-1a over the bytes), so
        /// every test gets its own reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h ^ 0x9E37_79B9_7F4A_7C15 }
        }

        /// Next raw 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// A generator of random values of type [`Strategy::Value`].
///
/// Unlike upstream proptest there is no value tree / shrinking; a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values for which `f` returns `Some`, retrying the
    /// generation otherwise. `whence` labels the filter in the panic
    /// message should it reject too many candidates.
    fn prop_filter_map<O, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { inner: self, whence, f }
    }

    /// Keeps only values for which `f` returns `true`, retrying otherwise.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, whence, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Retry budget for rejecting combinators before the test panics.
const MAX_REJECTS: u32 = 10_000;

/// See [`Strategy::prop_filter_map`].
#[derive(Clone, Debug)]
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..MAX_REJECTS {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map '{}' rejected {MAX_REJECTS} candidates", self.whence)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_REJECTS {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected {MAX_REJECTS} candidates", self.whence)
    }
}

/// Strategy producing exactly one value (cloned per case).
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_range_strategy!(usize, u8, u16, u32, u64, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: a fixed `usize` or a `Range<usize>`.
    pub trait IntoSizeRange {
        /// Draws a concrete length.
        fn pick_len(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn pick_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() % (self.end - self.start) as u64) as usize
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(
        element: S,
        size: impl IntoSizeRange,
    ) -> VecStrategy<S, impl IntoSizeRange> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick_len(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>` that is `Some` with probability `prob`.
    pub fn weighted<S: Strategy>(prob: f64, inner: S) -> Weighted<S> {
        assert!((0.0..=1.0).contains(&prob), "probability out of range");
        Weighted { prob, inner }
    }

    /// See [`weighted`].
    pub struct Weighted<S> {
        prob: f64,
        inner: S,
    }

    impl<S: Strategy> Strategy for Weighted<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // always draw the inner value so Some/None mixes consume the
            // same stream length — keeps sibling draws decoupled
            let v = self.inner.generate(rng);
            (rng.next_f64() < self.prob).then_some(v)
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy producing each boolean with probability 1/2.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Defines `#[test]` functions that run their body over many random
/// inputs drawn from the given strategies.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///     #[test]
///     fn it_holds(x in 0u32..10, (a, b) in arb_pair()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = outcome {
                    panic!("proptest case {}/{} failed:\n{}", case + 1, config.cases, message);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` for `proptest!` bodies: fails the case with a message
/// instead of unwinding mid-generator.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed at {}:{}: {}",
                file!(), line!(), ::std::format!($($fmt)+)
            ));
        }
    };
}

/// `assert_eq!` for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed at {}:{}: {} == {}\n  left: {:?}\n right: {:?}",
                file!(),
                line!(),
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed at {}:{}: {}\n  left: {:?}\n right: {:?}",
                file!(),
                line!(),
                ::std::format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

/// `assert_ne!` for `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed at {}:{}: {} != {}\n  both: {:?}",
                file!(),
                line!(),
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Skips the current case (counts as a pass) when its precondition
/// does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..10).prop_flat_map(|n| (Just(n), 0..n))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, y in 0usize..5, z in 0.25f64..0.75) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((0.25..0.75).contains(&z));
        }

        #[test]
        fn flat_map_respects_dependency((n, k) in arb_pair()) {
            prop_assert!(k < n, "k={k} n={n}");
        }

        #[test]
        fn vec_lengths_and_filters(
            v in crate::collection::vec(0u32..100, 2..8),
            w in crate::collection::vec(crate::bool::ANY, 4),
            opt in crate::option::weighted(0.5, 0u32..10),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 8);
            prop_assert_eq!(w.len(), 4);
            if let Some(x) = opt {
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn filter_map_retries(n in (0u32..100).prop_filter_map("odd only", |x| (x % 2 == 1).then_some(x))) {
            prop_assert_eq!(n % 2, 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        let s = (0usize..100, 0f64..1.0);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
