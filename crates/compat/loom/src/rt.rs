//! The execution core: one token, many threads, exhaustive replay.
//!
//! Exactly one model thread runs at a time; everyone else parks on the
//! condvar. Each scheduling point hands the token to the next thread
//! chosen by [`State::decide`], which replays the recorded prefix and
//! records every branch taken so [`crate::Builder::check`] can backtrack.

use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

pub(crate) type ThreadId = usize;

/// Why a thread is parked (used to find who a wake should target).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Block {
    /// Waiting in `recv`/`recv_timeout` on the given channel.
    Recv { chan: usize, timed: bool },
    /// Waiting for a mutex to be released.
    Lock { mutex: usize },
    /// Waiting for another model thread to finish.
    Join { target: ThreadId },
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Run {
    Runnable,
    Blocked(Block),
    Finished,
}

/// One recorded branch: which of `options` runnable candidates ran.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Decision {
    pub chosen: usize,
    pub options: usize,
}

struct Th {
    run: Run,
    /// Set when a stalled timed receive was elected to fire its deadline.
    timeout_fired: bool,
}

struct ChanMeta {
    senders: usize,
    receiver_alive: bool,
    /// Mirror of the queue length (the payload queue itself is typed and
    /// lives with the channel endpoints).
    len: usize,
}

#[derive(Default)]
struct CellMeta {
    readers: usize,
    writers: usize,
}

struct State {
    threads: Vec<Th>,
    active: Option<ThreadId>,
    /// Choices to replay from the previous backtrack.
    prefix: Vec<usize>,
    /// Decisions taken so far this execution.
    path: Vec<Decision>,
    preemptions: usize,
    max_preemptions: Option<usize>,
    /// A model-level failure (deadlock, cell race): every thread unparks
    /// and panics with this message so the run can tear down.
    fail: Option<String>,
    chans: Vec<ChanMeta>,
    mutexes: Vec<bool>,
    cells: Vec<CellMeta>,
}

pub(crate) struct Rt {
    state: Mutex<State>,
    cv: Condvar,
}

/// The per-OS-thread model identity: which runtime and which model
/// thread id the current thread acts as.
#[derive(Clone)]
pub(crate) struct Ctx {
    pub rt: Arc<Rt>,
    pub id: ThreadId,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

pub(crate) fn set_ctx(ctx: Option<Ctx>) {
    CTX.with(|c| *c.borrow_mut() = ctx);
}

pub(crate) fn ctx() -> Ctx {
    CTX.with(|c| c.borrow().clone()).expect("loom primitives may only be used inside loom::model")
}

/// What a channel poll observed (under the state lock, so the answer is
/// authoritative until the caller's next scheduling point).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Poll {
    Msg,
    Empty,
    Disconnected,
}

impl Rt {
    pub fn new(prefix: Vec<usize>, max_preemptions: Option<usize>) -> Self {
        Rt {
            state: Mutex::new(State {
                threads: vec![Th { run: Run::Runnable, timeout_fired: false }],
                active: Some(0),
                prefix,
                path: Vec::new(),
                preemptions: 0,
                max_preemptions,
                fail: None,
                chans: Vec::new(),
                mutexes: Vec::new(),
                cells: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    fn st(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    // ---- registration -------------------------------------------------

    pub fn register_thread(&self) -> ThreadId {
        let mut st = self.st();
        st.threads.push(Th { run: Run::Runnable, timeout_fired: false });
        st.threads.len() - 1
    }

    pub fn register_chan(&self) -> usize {
        let mut st = self.st();
        st.chans.push(ChanMeta { senders: 1, receiver_alive: true, len: 0 });
        st.chans.len() - 1
    }

    pub fn register_mutex(&self) -> usize {
        let mut st = self.st();
        st.mutexes.push(false);
        st.mutexes.len() - 1
    }

    pub fn register_cell(&self) -> usize {
        let mut st = self.st();
        st.cells.push(CellMeta::default());
        st.cells.len() - 1
    }

    // ---- scheduling ---------------------------------------------------

    /// A scheduling point: the current thread stays runnable and the token
    /// may move. `voluntary` switches (yield/sleep) never count against
    /// the preemption bound.
    pub fn switch(&self, me: ThreadId, voluntary: bool) {
        let mut st = self.st();
        st.threads[me].run = Run::Runnable;
        Self::choose_next(&mut st, me, voluntary);
        self.cv.notify_all();
        self.wait_for_token(st, me);
    }

    /// A freshly spawned thread's first park: runnable from registration,
    /// it simply waits for the token to reach it the first time.
    pub fn wait_first(&self, me: ThreadId) {
        let st = self.st();
        self.wait_for_token(st, me);
    }

    /// Parks the current thread with the given reason and hands the token
    /// on; returns once a wake made it runnable and the token came back.
    pub fn block(&self, me: ThreadId, why: Block) {
        let mut st = self.st();
        st.threads[me].run = Run::Blocked(why);
        Self::choose_next(&mut st, me, false);
        self.cv.notify_all();
        self.wait_for_token(st, me);
    }

    /// Marks the current thread finished, wakes its joiners, and hands
    /// the token on without waiting (the OS thread is about to exit).
    pub fn finish(&self, me: ThreadId) {
        let mut st = self.st();
        st.threads[me].run = Run::Finished;
        for t in st.threads.iter_mut() {
            if t.run == Run::Blocked(Block::Join { target: me }) {
                t.run = Run::Runnable;
            }
        }
        Self::choose_next(&mut st, me, false);
        self.cv.notify_all();
    }

    /// [`Rt::finish`] for the model's root thread, then waits for every
    /// model thread to finish so no thread leaks into the next schedule.
    pub fn finish_and_drain(&self, me: ThreadId) {
        self.finish(me);
        let mut st = self.st();
        loop {
            if st.fail.is_some() || st.threads.iter().all(|t| t.run == Run::Finished) {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocks until `target` finishes (no-op if it already has).
    pub fn join_wait(&self, me: ThreadId, target: ThreadId) {
        {
            let st = self.st();
            if st.threads[target].run == Run::Finished {
                return;
            }
        }
        self.block(me, Block::Join { target });
    }

    pub fn is_finished(&self, id: ThreadId) -> bool {
        self.st().threads[id].run == Run::Finished
    }

    /// Consumes the stall-elected-deadline marker for `me`.
    pub fn take_timeout_fired(&self, me: ThreadId) -> bool {
        let mut st = self.st();
        std::mem::take(&mut st.threads[me].timeout_fired)
    }

    /// Fails the whole execution: every parked thread unparks and panics
    /// with `msg` so the run tears down instead of hanging the harness.
    pub fn poison(&self, msg: &str) {
        let mut st = self.st();
        if st.fail.is_none() {
            st.fail = Some(msg.to_string());
        }
        for t in st.threads.iter_mut() {
            if matches!(t.run, Run::Blocked(_)) {
                t.run = Run::Runnable;
            }
        }
        self.cv.notify_all();
    }

    pub fn take_fail(&self) -> Option<String> {
        self.st().fail.take()
    }

    pub fn take_path(&self) -> Vec<Decision> {
        std::mem::take(&mut self.st().path)
    }

    fn wait_for_token(&self, mut st: MutexGuard<'_, State>, me: ThreadId) {
        loop {
            if st.fail.is_some() {
                break;
            }
            if st.active == Some(me) && st.threads[me].run == Run::Runnable {
                break;
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        let failed = st.fail.clone();
        drop(st);
        if let Some(msg) = failed {
            // unparked by a model failure: unwind out of user code (unless
            // this thread is already unwinding, in which case keep going)
            if !std::thread::panicking() {
                panic!("{msg}");
            }
        }
    }

    /// Replays or records one branch with `options` candidates.
    fn decide(st: &mut State, options: usize) -> usize {
        let i = st.path.len();
        let chosen = if i < st.prefix.len() { st.prefix[i] } else { 0 };
        debug_assert!(chosen < options, "loom: schedule replay diverged");
        st.path.push(Decision { chosen, options });
        chosen
    }

    /// Elects the next token holder. With no runnable thread, a stalled
    /// timed receive fires its deadline; with no timed waiter either, the
    /// model has deadlocked.
    fn choose_next(st: &mut State, me: ThreadId, voluntary: bool) {
        let runnable: Vec<ThreadId> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.run == Run::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            let timed: Vec<ThreadId> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| matches!(t.run, Run::Blocked(Block::Recv { timed: true, .. })))
                .map(|(i, _)| i)
                .collect();
            if !timed.is_empty() {
                // which deadline fires first at a global stall is itself a
                // model branch
                let pick = if timed.len() > 1 { Self::decide(st, timed.len()) } else { 0 };
                let t = timed[pick];
                st.threads[t].timeout_fired = true;
                st.threads[t].run = Run::Runnable;
                st.active = Some(t);
                return;
            }
            if st.threads.iter().all(|t| t.run == Run::Finished) {
                st.active = None;
                return;
            }
            let dump = st
                .threads
                .iter()
                .enumerate()
                .map(|(i, t)| format!("t{i}={:?}", t.run))
                .collect::<Vec<_>>()
                .join(", ");
            st.fail = Some(format!("loom: deadlock — every live thread is blocked ({dump})"));
            for t in st.threads.iter_mut() {
                if matches!(t.run, Run::Blocked(_)) {
                    t.run = Run::Runnable;
                }
            }
            st.active = st.threads.iter().position(|t| t.run == Run::Runnable);
            return;
        }
        let me_runnable = runnable.contains(&me);
        let capped =
            !voluntary && me_runnable && st.max_preemptions.is_some_and(|m| st.preemptions >= m);
        let cands: Vec<ThreadId> = if capped { vec![me] } else { runnable };
        let pick = if cands.len() > 1 { Self::decide(st, cands.len()) } else { 0 };
        let next = cands[pick];
        if !voluntary && me_runnable && next != me {
            st.preemptions += 1;
        }
        st.active = Some(next);
    }

    // ---- channel bookkeeping -----------------------------------------

    /// Accounts one enqueued message and wakes the channel's receiver.
    /// Returns `false` (do not enqueue) when the receiver is gone.
    pub fn chan_send(&self, id: usize) -> bool {
        let mut st = self.st();
        if !st.chans[id].receiver_alive {
            return false;
        }
        st.chans[id].len += 1;
        Self::wake_recv(&mut st, id);
        true
    }

    /// The receiver's view of the channel, consuming one message if any.
    pub fn chan_poll(&self, id: usize) -> Poll {
        let mut st = self.st();
        if st.chans[id].len > 0 {
            st.chans[id].len -= 1;
            Poll::Msg
        } else if st.chans[id].senders == 0 {
            Poll::Disconnected
        } else {
            Poll::Empty
        }
    }

    pub fn chan_clone_sender(&self, id: usize) {
        self.st().chans[id].senders += 1;
    }

    /// Drop bookkeeping runs without a scheduling point so teardown during
    /// unwinding can never park a panicking thread.
    pub fn chan_drop_sender(&self, id: usize) {
        let mut st = self.st();
        st.chans[id].senders -= 1;
        if st.chans[id].senders == 0 {
            Self::wake_recv(&mut st, id);
            self.cv.notify_all();
        }
    }

    pub fn chan_drop_receiver(&self, id: usize) {
        self.st().chans[id].receiver_alive = false;
    }

    fn wake_recv(st: &mut MutexGuard<'_, State>, chan: usize) {
        for t in st.threads.iter_mut() {
            if matches!(t.run, Run::Blocked(Block::Recv { chan: c, .. }) if c == chan) {
                t.run = Run::Runnable;
            }
        }
    }

    // ---- mutex bookkeeping -------------------------------------------

    pub fn mutex_try_acquire(&self, id: usize) -> bool {
        let mut st = self.st();
        if st.mutexes[id] {
            false
        } else {
            st.mutexes[id] = true;
            true
        }
    }

    pub fn mutex_release(&self, id: usize) {
        let mut st = self.st();
        st.mutexes[id] = false;
        for t in st.threads.iter_mut() {
            if t.run == Run::Blocked(Block::Lock { mutex: id }) {
                t.run = Run::Runnable;
            }
        }
        self.cv.notify_all();
    }

    // ---- cell access tracking ----------------------------------------

    /// Opens an access window on a tracked cell; overlapping windows that
    /// include a writer are a data race and fail the model.
    pub fn cell_begin(&self, id: usize, mutable: bool) {
        let msg = {
            let mut st = self.st();
            let cell = &mut st.cells[id];
            let racy =
                if mutable { cell.writers > 0 || cell.readers > 0 } else { cell.writers > 0 };
            if racy {
                Some(format!(
                    "loom: data race — overlapping {} access to an UnsafeCell \
                     ({} readers, {} writers active)",
                    if mutable { "mutable" } else { "shared" },
                    cell.readers,
                    cell.writers
                ))
            } else {
                if mutable {
                    cell.writers += 1;
                } else {
                    cell.readers += 1;
                }
                None
            }
        };
        if let Some(msg) = msg {
            self.poison(&msg);
            panic!("{msg}");
        }
    }

    pub fn cell_end(&self, id: usize, mutable: bool) {
        let mut st = self.st();
        let cell = &mut st.cells[id];
        if mutable {
            cell.writers -= 1;
        } else {
            cell.readers -= 1;
        }
    }
}
