//! Offline stand-in for [loom](https://docs.rs/loom): exhaustive
//! model-checking of concurrent code, with the API subset this workspace
//! uses (`model`, `thread::{spawn, scope, yield_now, sleep}`,
//! `sync::{Arc, Mutex, mpsc, atomic}`, `cell::UnsafeCell`).
//!
//! # How it checks
//!
//! [`model`] reruns the closure under a cooperative *token-passing*
//! scheduler: every synchronization operation (channel send/recv, mutex
//! lock, atomic access, cell access, yield) is a **scheduling point** at
//! which exactly one runnable model thread holds the token. Whenever more
//! than one thread is runnable at a scheduling point, the choice is a
//! branch; the checker explores the branch tree depth-first by replaying
//! a recorded choice prefix and bumping the deepest unexhausted decision,
//! until no unexplored schedule remains. A test body that panics under
//! *any* schedule fails the whole model, with the schedule count printed
//! so the failure is replayable by rerunning the (deterministic) search.
//!
//! # What it models
//!
//! * **mpsc channels** with the std API. `recv_timeout` models deadlines
//!   as *stall escapes*: a timed receive only returns `Timeout` when no
//!   thread in the whole model can make progress (everything blocked),
//!   which is exactly the regime a real deadline fires in without making
//!   every healthy receive a timeout branch. When several timed waiters
//!   exist at a stall, which deadline fires first is itself explored.
//! * **Mutexes** with real blocking and wake-ordering exploration.
//! * **Atomics** under sequential consistency (every access is a
//!   scheduling point; weak-memory reorderings are *not* modeled).
//! * **`cell::UnsafeCell`** with access tracking: overlapping `with_mut`
//!   windows from two threads (a data race) fail the model.
//! * **Deadlocks**: a state where every live thread is blocked and no
//!   timed waiter exists fails the model with a thread-state dump.
//!
//! # Divergences from real loom
//!
//! * `sync::Arc` is std's `Arc` (drop-count schedules are not explored).
//! * The default preemption bound is 2 (override with
//!   `LOOM_MAX_PREEMPTIONS`, `none` for unbounded); voluntary reschedules
//!   (`yield_now`, `sleep`) never count against the bound.
//! * The closure runs on the calling thread; spawned model threads are
//!   real OS threads parked until the token reaches them, so `std`-only
//!   code (allocation, `env::var`, panics) behaves exactly as in
//!   production.

mod rt;

pub mod cell;
pub mod sync;
pub mod thread;

use std::panic::AssertUnwindSafe;
use std::sync::Arc;

/// Exploration limits for one [`model`] run.
#[derive(Clone, Debug)]
pub struct Builder {
    /// Involuntary context switches allowed per schedule (`None` =
    /// unbounded, exhaustive). Bounding keeps the schedule tree tractable
    /// while still covering every bug reachable with that many
    /// preemptions — the standard model-checking trade-off.
    pub max_preemptions: Option<usize>,
    /// Hard cap on explored schedules; exceeding it fails the model
    /// (a state-space blowup is a test bug, not a pass).
    pub max_iterations: usize,
}

impl Default for Builder {
    fn default() -> Self {
        let max_preemptions = match std::env::var("LOOM_MAX_PREEMPTIONS") {
            Ok(v) if v.eq_ignore_ascii_case("none") => None,
            Ok(v) => v.parse().ok().or(Some(2)),
            Err(_) => Some(2),
        };
        let max_iterations = std::env::var("LOOM_MAX_ITERATIONS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(200_000);
        Builder { max_preemptions, max_iterations }
    }
}

impl Builder {
    /// A fresh builder with the environment-derived defaults.
    pub fn new() -> Self {
        Builder::default()
    }

    /// Explores every schedule of `f` within the configured bounds,
    /// panicking on the first failing schedule. Returns the number of
    /// schedules explored.
    pub fn check<F: Fn()>(&self, f: F) -> usize {
        let mut prefix: Vec<usize> = Vec::new();
        let mut explored = 0usize;
        loop {
            explored += 1;
            assert!(
                explored <= self.max_iterations,
                "loom: exceeded {} schedules; bound preemptions or shrink the test",
                self.max_iterations
            );
            let rt = Arc::new(rt::Rt::new(std::mem::take(&mut prefix), self.max_preemptions));
            rt::set_ctx(Some(rt::Ctx { rt: Arc::clone(&rt), id: 0 }));
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(&f));
            rt.finish_and_drain(0);
            rt::set_ctx(None);
            let path = rt.take_path();
            if let Err(payload) = outcome {
                eprintln!(
                    "loom: schedule {} of the search failed (choices {:?})",
                    explored,
                    path.iter().map(|d| d.chosen).collect::<Vec<_>>()
                );
                std::panic::resume_unwind(payload);
            }
            if let Some(msg) = rt.take_fail() {
                panic!("{msg} (schedule {explored})");
            }
            match path.iter().rposition(|d| d.chosen + 1 < d.options) {
                Some(i) => {
                    prefix = path[..i].iter().map(|d| d.chosen).collect();
                    prefix.push(path[i].chosen + 1);
                }
                None => return explored,
            }
        }
    }
}

/// Model-checks `f` under every thread interleaving within the default
/// [`Builder`] bounds. See the crate docs for exactly what is explored.
pub fn model<F: Fn()>(f: F) {
    Builder::default().check(f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering as StdOrdering};

    #[test]
    fn single_thread_runs_once() {
        let runs = Builder::default().check(|| {
            let (tx, rx) = sync::mpsc::channel();
            tx.send(7u64).expect("receiver is live");
            assert_eq!(rx.try_recv(), Ok(7));
        });
        assert_eq!(runs, 1, "no concurrency, no branches");
    }

    #[test]
    fn two_writers_explore_both_orders() {
        // A shared counter written by two threads: both final orders must
        // be explored, so the model must run more than one schedule.
        let orders = std::sync::Arc::new(std::sync::Mutex::new(std::collections::HashSet::new()));
        let seen = std::sync::Arc::clone(&orders);
        Builder { max_preemptions: None, max_iterations: 10_000 }.check(move || {
            let a = std::sync::Arc::new(sync::atomic::AtomicU64::new(0));
            let b = std::sync::Arc::clone(&a);
            let h = thread::spawn(move || {
                b.store(1, sync::atomic::Ordering::SeqCst);
            });
            let observed = a.load(sync::atomic::Ordering::SeqCst);
            h.join().expect("writer thread completes");
            seen.lock().expect("order log").insert(observed);
        });
        let seen = orders.lock().expect("order log");
        assert!(seen.contains(&0) && seen.contains(&1), "both orders explored: {seen:?}");
    }

    #[test]
    fn channel_is_fifo_under_every_schedule() {
        model(|| {
            let (tx, rx) = sync::mpsc::channel();
            let h = thread::spawn(move || {
                for i in 0..3u64 {
                    tx.send(i).expect("receiver is live");
                }
            });
            for i in 0..3u64 {
                assert_eq!(rx.recv(), Ok(i), "per-channel FIFO");
            }
            h.join().expect("sender completes");
        });
    }

    #[test]
    fn dropped_sender_disconnects() {
        model(|| {
            let (tx, rx) = sync::mpsc::channel::<u64>();
            let h = thread::spawn(move || {
                tx.send(1).expect("receiver is live");
                // tx drops here
            });
            assert_eq!(rx.recv(), Ok(1));
            assert!(rx.recv().is_err(), "closed channel reports disconnect");
            h.join().expect("sender completes");
        });
    }

    #[test]
    fn timeout_fires_only_at_a_genuine_stall() {
        model(|| {
            let (tx, rx) = sync::mpsc::channel::<u64>();
            let h = thread::spawn(move || {
                tx.send(9).expect("receiver is live");
                // keep tx alive past the send so disconnect can't race in
                thread::yield_now();
            });
            // a sender always able to run means the deadline never fires
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(1)),
                Ok(9),
                "timed recv with a live sender must deliver, not time out"
            );
            h.join().expect("sender completes");
        });
    }

    #[test]
    fn stalled_timed_recv_times_out_instead_of_deadlocking() {
        model(|| {
            let (_tx, rx) = sync::mpsc::channel::<u64>();
            let got = rx.recv_timeout(std::time::Duration::from_millis(1));
            assert_eq!(got, Err(sync::mpsc::RecvTimeoutError::Timeout));
        });
    }

    #[test]
    fn deadlock_is_detected_and_fails_the_model() {
        let hit = std::panic::catch_unwind(|| {
            model(|| {
                let (_tx, rx) = sync::mpsc::channel::<u64>();
                // untimed recv with a live-but-unused sender: unblockable
                let _ = rx.recv();
            });
        });
        let msg = match hit {
            Err(p) => p
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default(),
            Ok(()) => panic!("an unblockable recv must fail the model"),
        };
        assert!(msg.contains("deadlock"), "diagnostic names the deadlock: {msg}");
    }

    #[test]
    fn mutex_excludes_and_both_acquisition_orders_run() {
        model(|| {
            let m = std::sync::Arc::new(sync::Mutex::new(0u64));
            let m2 = std::sync::Arc::clone(&m);
            let h = thread::spawn(move || {
                let mut g = m2.lock().expect("model mutex");
                *g += 1;
            });
            {
                let mut g = m.lock().expect("model mutex");
                *g += 10;
            }
            h.join().expect("locker completes");
            assert_eq!(*m.lock().expect("model mutex"), 11);
        });
    }

    #[test]
    fn unsafe_cell_race_is_caught() {
        let hit = std::panic::catch_unwind(|| {
            model(|| {
                let c = std::sync::Arc::new(RacyCell::new(0u64));
                let c2 = std::sync::Arc::clone(&c);
                let h = thread::spawn(move || c2.0.with_mut(|p| unsafe { *p = 1 }));
                c.0.with_mut(|p| unsafe { *p = 2 });
                h.join().expect("writer completes");
            });
        });
        assert!(hit.is_err(), "two overlapping mutable windows must fail the model");
    }

    /// Test-only wrapper granting `Sync` so the race detector has
    /// something to catch (this is exactly the pattern under test in
    /// `apsp-par`'s `Slot`).
    struct RacyCell(cell::UnsafeCell<u64>);
    impl RacyCell {
        fn new(v: u64) -> Self {
            RacyCell(cell::UnsafeCell::new(v))
        }
    }
    unsafe impl Sync for RacyCell {}
    unsafe impl Send for RacyCell {}

    #[test]
    fn scoped_threads_join_and_return_values() {
        model(|| {
            let mut data = [0u64; 2];
            let (a, b) = data.split_at_mut(1);
            thread::scope(|s| {
                let ha = s.spawn(|| {
                    a[0] = 1;
                    10u64
                });
                let hb = s.spawn(|| {
                    b[0] = 2;
                    20u64
                });
                assert_eq!(ha.join().expect("a completes"), 10);
                assert_eq!(hb.join().expect("b completes"), 20);
            });
            assert_eq!(data, [1, 2]);
        });
    }

    #[test]
    fn scoped_panic_payload_reaches_join() {
        model(|| {
            thread::scope(|s| {
                let h = s.spawn(|| std::panic::panic_any(42u64));
                let payload = h.join().expect_err("the child panicked");
                assert_eq!(payload.downcast_ref::<u64>(), Some(&42));
            });
        });
    }

    #[test]
    fn preemption_bound_caps_the_search() {
        // An N-step racy loop explodes unbounded but stays tiny at bound 0.
        let runs_bounded =
            Builder { max_preemptions: Some(0), max_iterations: 10_000 }.check(|| {
                let a = std::sync::Arc::new(sync::atomic::AtomicU64::new(0));
                let b = std::sync::Arc::clone(&a);
                let h = thread::spawn(move || {
                    for _ in 0..4 {
                        b.fetch_add(1, sync::atomic::Ordering::SeqCst);
                    }
                });
                for _ in 0..4 {
                    a.fetch_add(1, sync::atomic::Ordering::SeqCst);
                }
                h.join().expect("adder completes");
                assert_eq!(a.load(sync::atomic::Ordering::SeqCst), 8);
            });
        assert!(runs_bounded < 100, "bound 0 keeps the tree near-linear: {runs_bounded}");
    }

    #[test]
    fn model_threads_do_not_leak_between_runs() {
        // `model` drains every spawned thread before returning; the OS
        // thread count must come back down (checked coarsely).
        let probe = || {
            std::fs::read_to_string("/proc/self/status").ok().and_then(|s| {
                s.lines()
                    .find(|l| l.starts_with("Threads:"))
                    .and_then(|l| l.split_whitespace().nth(1))
                    .and_then(|v| v.parse::<usize>().ok())
            })
        };
        let before = probe();
        model(|| {
            thread::scope(|s| {
                for _ in 0..3 {
                    s.spawn(|| thread::yield_now());
                }
            });
        });
        if let (Some(b), Some(a)) = (before, probe()) {
            assert!(a <= b + 3, "model leaked threads: {b} -> {a}");
        }
        let _ = AtomicUsize::new(0).load(StdOrdering::Relaxed);
    }
}
