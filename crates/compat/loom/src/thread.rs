//! Model-thread spawning: real OS threads whose execution is gated by
//! the scheduling token, with std-shaped `spawn`/`scope`/join APIs.

use crate::rt::{self, Ctx, ThreadId};
use std::cell::RefCell;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex, PoisonError};
use std::time::Duration;

type Payload<T> = Arc<StdMutex<Option<std::thread::Result<T>>>>;

/// A voluntary scheduling point (never counts as a preemption).
pub fn yield_now() {
    let c = rt::ctx();
    c.rt.switch(c.id, true);
}

/// Model time does not pass; a sleep is just a voluntary reschedule.
pub fn sleep(_dur: Duration) {
    yield_now();
}

fn take_result<T>(result: &Payload<T>) -> std::thread::Result<T> {
    result
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
        .expect("a finished loom thread has deposited its result")
}

/// Spawns a model thread. The closure runs on a real OS thread but only
/// while it holds the scheduling token, so every interleaving with the
/// spawner is explored.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (target, _os, result) = spawn_inner(f);
    JoinHandle { target, result }
}

pub struct JoinHandle<T> {
    target: ThreadId,
    result: Payload<T>,
}

impl<T> JoinHandle<T> {
    pub fn join(self) -> std::thread::Result<T> {
        let c = rt::ctx();
        c.rt.join_wait(c.id, self.target);
        take_result(&self.result)
    }
}

pub struct ScopedJoinHandle<'scope, T> {
    target: ThreadId,
    result: Payload<T>,
    _scope: PhantomData<&'scope ()>,
}

impl<T> ScopedJoinHandle<'_, T> {
    pub fn join(self) -> std::thread::Result<T> {
        let c = rt::ctx();
        c.rt.join_wait(c.id, self.target);
        take_result(&self.result)
    }
}

pub struct Scope<'scope> {
    spawned: RefCell<Vec<(ThreadId, std::thread::JoinHandle<()>)>>,
    _scope: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce() -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let (target, os, result) = spawn_inner(f);
        self.spawned.borrow_mut().push((target, os));
        ScopedJoinHandle { target, result, _scope: PhantomData }
    }
}

/// `std::thread::scope`-shaped structured concurrency: every spawned
/// model thread is joined (model-level and OS-level) before this returns,
/// even when `f` panics, so borrowed captures stay sound.
pub fn scope<'env, T>(f: impl FnOnce(&Scope<'env>) -> T) -> T {
    let c = rt::ctx();
    let s = Scope { spawned: RefCell::new(Vec::new()), _scope: PhantomData };
    let out = catch_unwind(AssertUnwindSafe(|| f(&s)));
    let spawned = s.spawned.take();
    if out.is_err() && spawned.iter().any(|(id, _)| !c.rt.is_finished(*id)) {
        // a panic is escaping the scope with children still live: poison
        // the execution so they unwind instead of blocking forever
        c.rt.poison("loom: scope tore down while child threads were still running");
    }
    for (id, os) in spawned {
        c.rt.join_wait(c.id, id);
        let _ = os.join();
    }
    match out {
        Ok(v) => v,
        Err(p) => resume_unwind(p),
    }
}

fn spawn_inner<'a, F, T>(f: F) -> (ThreadId, std::thread::JoinHandle<()>, Payload<T>)
where
    F: FnOnce() -> T + Send + 'a,
    T: Send + 'a,
{
    let c = rt::ctx();
    let id = c.rt.register_thread();
    let result: Payload<T> = Arc::new(StdMutex::new(None));
    let slot = Arc::clone(&result);
    let child = Ctx { rt: Arc::clone(&c.rt), id };
    let body: Box<dyn FnOnce() + Send + 'a> = Box::new(move || {
        rt::set_ctx(Some(child.clone()));
        child.rt.wait_first(id);
        let out = catch_unwind(AssertUnwindSafe(f));
        *slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
        child.rt.finish(id);
        rt::set_ctx(None);
    });
    // SAFETY: the closure may borrow from the spawner's stack ('a), but
    // every model thread is driven to completion and OS-joined before 'a
    // can end — `scope` joins on both paths, and plain `spawn` requires
    // 'static so nothing borrowed can dangle. The transmute only erases
    // the lifetime bound on the box, never the data behind it.
    let body: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(body) };
    let os = std::thread::Builder::new()
        .name(format!("loom-{id}"))
        .spawn(body)
        .expect("spawn a loom model thread");
    // the child is schedulable from here on: give the scheduler the
    // chance to run it right away
    c.rt.switch(c.id, true);
    (id, os, result)
}
