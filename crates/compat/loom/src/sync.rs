//! Modeled synchronization primitives with std-shaped APIs: `Mutex`,
//! `mpsc` channels, and sequentially-consistent atomics. `Arc` is re-used
//! from std (reference-count schedules are not explored — see the crate
//! docs).

use crate::rt::{self, Block};
use std::sync::PoisonError;

pub use std::sync::Arc;
pub use std::sync::{LockResult, TryLockError, TryLockResult};

/// Sequentially-consistent modeled atomics: every access is a scheduling
/// point, so all SC interleavings are explored (weak orderings are
/// strengthened to SC — sound for checking, blind to relaxed-only bugs).
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    fn access_point() {
        let c = crate::rt::ctx();
        c.rt.switch(c.id, false);
    }

    macro_rules! modeled_atomic {
        ($name:ident, $std:ty, $ty:ty) => {
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                pub fn new(v: $ty) -> Self {
                    Self { inner: <$std>::new(v) }
                }

                pub fn load(&self, order: Ordering) -> $ty {
                    access_point();
                    self.inner.load(order)
                }

                pub fn store(&self, v: $ty, order: Ordering) {
                    access_point();
                    self.inner.store(v, order);
                }

                pub fn fetch_add(&self, v: $ty, order: Ordering) -> $ty {
                    access_point();
                    self.inner.fetch_add(v, order)
                }

                pub fn swap(&self, v: $ty, order: Ordering) -> $ty {
                    access_point();
                    self.inner.swap(v, order)
                }

                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    access_point();
                    self.inner.compare_exchange(current, new, success, failure)
                }
            }
        };
    }

    modeled_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    modeled_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        pub fn new(v: bool) -> Self {
            Self { inner: std::sync::atomic::AtomicBool::new(v) }
        }

        pub fn load(&self, order: Ordering) -> bool {
            access_point();
            self.inner.load(order)
        }

        pub fn store(&self, v: bool, order: Ordering) {
            access_point();
            self.inner.store(v, order);
        }
    }
}

/// A modeled mutex: acquisition order among contenders is explored; the
/// payload lives in an (always token-serialized, hence uncontended) std
/// mutex so guards deref exactly like std's.
pub struct Mutex<T: ?Sized> {
    id: usize,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        let c = rt::ctx();
        Mutex { id: c.rt.register_mutex(), inner: std::sync::Mutex::new(value) }
    }

    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let c = rt::ctx();
        c.rt.switch(c.id, false);
        while !c.rt.mutex_try_acquire(self.id) {
            c.rt.block(c.id, Block::Lock { mutex: self.id });
        }
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        Ok(MutexGuard { owner_id: self.id, inner: Some(inner) })
    }

    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.inner.into_inner().unwrap_or_else(PoisonError::into_inner))
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    owner_id: usize,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the inner lock until drop")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the inner lock until drop")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // release the payload lock first, then the model ownership; no
        // scheduling point here so unlock-during-unwind can never park
        self.inner.take();
        let c = rt::ctx();
        c.rt.mutex_release(self.owner_id);
    }
}

/// Modeled `std::sync::mpsc` with stall-escape deadline semantics (see
/// the crate docs for why `recv_timeout` only times out at a global
/// stall).
pub mod mpsc {
    use crate::rt::{self, Block, Poll};
    use std::collections::VecDeque;
    use std::sync::{Arc, PoisonError};
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    struct ChanInner<T> {
        id: usize,
        q: std::sync::Mutex<VecDeque<T>>,
    }

    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let c = rt::ctx();
        let inner = Arc::new(ChanInner {
            id: c.rt.register_chan(),
            q: std::sync::Mutex::new(VecDeque::new()),
        });
        (Sender { ch: Arc::clone(&inner) }, Receiver { ch: inner })
    }

    pub struct Sender<T> {
        ch: Arc<ChanInner<T>>,
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let c = rt::ctx();
            c.rt.switch(c.id, false);
            if !c.rt.chan_send(self.ch.id) {
                return Err(SendError(value));
            }
            self.ch.q.lock().unwrap_or_else(PoisonError::into_inner).push_back(value);
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let c = rt::ctx();
            c.rt.chan_clone_sender(self.ch.id);
            Sender { ch: Arc::clone(&self.ch) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let c = rt::ctx();
            c.rt.chan_drop_sender(self.ch.id);
        }
    }

    pub struct Receiver<T> {
        ch: Arc<ChanInner<T>>,
    }

    impl<T> Receiver<T> {
        fn pop(&self) -> T {
            self.ch
                .q
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
                .expect("channel length mirror matches the queue")
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let c = rt::ctx();
            c.rt.switch(c.id, false);
            match c.rt.chan_poll(self.ch.id) {
                Poll::Msg => Ok(self.pop()),
                Poll::Empty => Err(TryRecvError::Empty),
                Poll::Disconnected => Err(TryRecvError::Disconnected),
            }
        }

        pub fn recv(&self) -> Result<T, RecvError> {
            self.recv_inner(false).map_err(|_| RecvError)
        }

        /// The deadline is model time, not wall time: it fires (with the
        /// `Timeout` error) only when the whole model is stalled, i.e.
        /// exactly when a real deadline would be the only way forward.
        pub fn recv_timeout(&self, _timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.recv_inner(true)
        }

        fn recv_inner(&self, timed: bool) -> Result<T, RecvTimeoutError> {
            let c = rt::ctx();
            loop {
                c.rt.switch(c.id, false);
                match c.rt.chan_poll(self.ch.id) {
                    Poll::Msg => return Ok(self.pop()),
                    Poll::Disconnected => return Err(RecvTimeoutError::Disconnected),
                    Poll::Empty => {}
                }
                c.rt.block(c.id, Block::Recv { chan: self.ch.id, timed });
                if timed && c.rt.take_timeout_fired(c.id) {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let c = rt::ctx();
            c.rt.chan_drop_receiver(self.ch.id);
        }
    }
}
