//! Access-tracked `UnsafeCell`: the `with`/`with_mut` windows are
//! scheduling points, and overlapping windows that include a writer fail
//! the model as a data race — this is how `unsafe` aliasing claims (like
//! `apsp-par`'s `Slot`) get *checked* instead of trusted.

use crate::rt;

#[derive(Debug)]
pub struct UnsafeCell<T: ?Sized> {
    id: usize,
    inner: std::cell::UnsafeCell<T>,
}

impl<T> UnsafeCell<T> {
    pub fn new(value: T) -> Self {
        let c = rt::ctx();
        UnsafeCell { id: c.rt.register_cell(), inner: std::cell::UnsafeCell::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }

    /// Runs `f` with shared access. The window is a scheduling point, so
    /// any concurrently attempted mutable window is observed and fails
    /// the model.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        let c = rt::ctx();
        c.rt.cell_begin(self.id, false);
        c.rt.switch(c.id, false);
        let out = f(self.inner.get());
        c.rt.cell_end(self.id, false);
        out
    }

    /// Runs `f` with mutable access; overlapping with *any* other access
    /// window is a race and fails the model.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        let c = rt::ctx();
        c.rt.cell_begin(self.id, true);
        c.rt.switch(c.id, false);
        let out = f(self.inner.get());
        c.rt.cell_end(self.id, true);
        out
    }
}
