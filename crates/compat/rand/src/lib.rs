#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *subset* of the rand 0.9 API it actually uses:
//! `StdRng::seed_from_u64`, `Rng::random`, `Rng::random_range`, and
//! `SliceRandom::shuffle`. The generator is SplitMix64 — deterministic,
//! fast, and statistically sound for workload generation (it is *not* a
//! cryptographic RNG, which the real `StdRng` is; nothing here needs one).
//!
//! Streams differ from the real `StdRng` (ChaCha12), so seeded workloads
//! are deterministic but not bit-identical with upstream rand. Golden cost
//! tests in this repo pin *structural* costs (grid graphs), which do not
//! depend on the weight stream.

/// Concrete RNG types.
pub mod rngs {
    /// Deterministic seeded RNG (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // avoid the all-zero fixed point and decorrelate small seeds
        StdRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }
}

/// Values producible uniformly by [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::random_range`], mirroring
/// `rand::distr::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_sample_range!(usize, u8, u16, u32, u64);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

/// The user-facing RNG trait, mirroring `rand::Rng`.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform value of type `T` (e.g. `f64` in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Uniform value in `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea, Flood 2014)
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Slice extension trait providing in-place shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y = rng.random_range(3usize..10);
            assert!((3..10).contains(&y));
            let z = rng.random_range(1u32..=4);
            assert!((1..=4).contains(&z));
            let w = rng.random_range(0.5f64..2.5);
            assert!((0.5..2.5).contains(&w));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
