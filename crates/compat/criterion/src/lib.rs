#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of the criterion 0.x API its benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] with
//! `sample_size` / `throughput` / `bench_function` / `bench_with_input`
//! / `finish`, [`Bencher::iter`], [`BenchmarkId`], [`Throughput`], and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical machinery this harness times
//! `sample_size` runs of each closure with `std::time::Instant` and
//! prints median / min per-iteration wall time (plus element throughput
//! when declared). That is deliberately simple: the repo's quantitative
//! claims live in the simulated cost model (`apsp-simnet`), and these
//! benches exist for relative, order-of-magnitude comparisons.

use std::fmt::Display;
use std::time::Instant;

/// Prevents the optimizer from discarding a value computed in a bench loop.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group: `function_id/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id with a function name and a parameter value.
    pub fn new(function_id: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{function_id}/{parameter}") }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Work-per-iteration declaration, used to report throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Iterations process this many abstract elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbench group: {name}");
        BenchmarkGroup { _criterion: self, name, sample_size: 10, throughput: None }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| routine(b, input));
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| routine(b));
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}

    fn run(&mut self, id: &str, mut routine: impl FnMut(&mut Bencher)) {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher { nanos: 0, iters: 0 };
            routine(&mut bencher);
            if bencher.iters > 0 {
                samples.push(bencher.nanos as f64 / bencher.iters as f64);
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let (median, min) = match samples.as_slice() {
            [] => (0.0, 0.0),
            s => (s[s.len() / 2], s[0]),
        };
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) if median > 0.0 => {
                format!("  ({:.1} Melem/s)", n as f64 / median * 1e3 / 1e6)
            }
            Throughput::Bytes(n) if median > 0.0 => {
                format!("  ({:.1} MB/s)", n as f64 / median * 1e3 / 1e6)
            }
            _ => String::new(),
        });
        println!(
            "  {}/{id}: median {:.3} ms, min {:.3} ms over {} samples{}",
            self.name,
            median / 1e6,
            min / 1e6,
            samples.len(),
            rate.unwrap_or_default()
        );
    }
}

/// Times the routine under measurement.
pub struct Bencher {
    nanos: u128,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        black_box(routine());
        self.nanos += start.elapsed().as_nanos();
        self.iters += 1;
    }
}

/// Bundles benchmark functions under one name for `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates the `main` function running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_routines_and_counts_samples() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        {
            let mut group = c.benchmark_group("smoke");
            group.sample_size(3);
            group.throughput(Throughput::Elements(10));
            group.bench_function("count", |b| {
                b.iter(|| {
                    calls += 1;
                    calls
                })
            });
            group.bench_with_input(BenchmarkId::new("with_input", 7), &7usize, |b, &x| {
                b.iter(|| x * 2)
            });
            group.finish();
        }
        assert_eq!(calls, 3);
    }

    criterion_group!(smoke_group, smoke_fn);

    fn smoke_fn(c: &mut Criterion) {
        c.benchmark_group("g").bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn macros_compose() {
        smoke_group();
    }
}
