//! Property tests for the distributed nested-dissection pipeline: on
//! arbitrary graphs and rank counts it must produce valid orderings
//! (separation invariant, complete vertex coverage) deterministically.

use apsp_core::dnd::dist_nested_dissection;
use apsp_graph::GraphBuilder;
use proptest::prelude::*;

fn arb_graph(max_n: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize)>)> {
    (4..max_n).prop_flat_map(|n| {
        let edge = (0..n, 0..n);
        (Just(n), proptest::collection::vec(edge, 0..(3 * n)))
    })
}

fn build(n: usize, edges: &[(usize, usize)]) -> apsp_graph::Csr {
    let mut b = GraphBuilder::new(n);
    for &(u, v) in edges {
        if u != v {
            b.add_edge(u, v, 1.0);
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn orderings_are_always_valid(
        (n, edges) in arb_graph(40),
        h in 2u32..4,
        p_pick in 0usize..4,
        seed in 0u64..100,
    ) {
        let g = build(n, &edges);
        let p = [1, 3, 4, 7][p_pick];
        let result = dist_nested_dissection(&g, h, p, seed);
        prop_assert!(result.ordering.validate(&g).is_ok());
        prop_assert_eq!(result.ordering.supernode_sizes.iter().sum::<usize>(), n);
        // every vertex appears exactly once in the permutation (from_order
        // enforces bijection; double-check coverage)
        let mut seen = vec![false; n];
        for new in 0..n {
            let old = result.ordering.perm.to_old(new);
            prop_assert!(!seen[old]);
            seen[old] = true;
        }
    }

    #[test]
    fn deterministic_per_seed((n, edges) in arb_graph(28), seed in 0u64..50) {
        let g = build(n, &edges);
        let a = dist_nested_dissection(&g, 3, 4, seed);
        let b = dist_nested_dissection(&g, 3, 4, seed);
        prop_assert_eq!(a.ordering.perm.as_order(), b.ordering.perm.as_order());
        prop_assert_eq!(
            a.report.critical_bandwidth(),
            b.report.critical_bandwidth()
        );
    }

    #[test]
    fn solves_feed_through((n, edges) in arb_graph(26)) {
        // the distributed ordering must always be usable by the solver
        let g = build(n, &edges);
        let result = dist_nested_dissection(&g, 2, 4, 7);
        let layout = apsp_core::SupernodalLayout::from_ordering(&result.ordering);
        let gp = g.permuted(&result.ordering.perm);
        let solved = apsp_core::sparse2d::sparse2d(
            &layout,
            &gp,
            apsp_core::R4Strategy::OneToOne,
        );
        let dist = apsp_core::SupernodalLayout::unpermute(
            &solved.dist_eliminated,
            &result.ordering.perm,
        );
        let reference = apsp_graph::oracle::apsp_dijkstra(&g);
        prop_assert!(dist.first_mismatch(&reference, 1e-9).is_none());
    }
}
