//! End-to-end property tests: every algorithm in the crate must agree with
//! the Dijkstra oracle on arbitrary graphs.

use apsp_core::dcapsp::dc_apsp;
use apsp_core::fw2d::fw2d;
use apsp_core::sparse2d::{sparse2d, R4Strategy};
use apsp_core::superfw::superfw_apsp;
use apsp_core::supernodal::SupernodalLayout;
use apsp_graph::{oracle, GraphBuilder};
use apsp_partition::{nested_dissection, NdOptions};
use proptest::prelude::*;

fn arb_graph(max_n: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize, u32)>)> {
    (4..max_n).prop_flat_map(|n| {
        let edge = (0..n, 0..n, 1u32..50);
        (Just(n), proptest::collection::vec(edge, 0..(3 * n)))
    })
}

fn build(n: usize, edges: &[(usize, usize, u32)]) -> apsp_graph::Csr {
    let mut b = GraphBuilder::new(n);
    for &(u, v, w) in edges {
        if u != v {
            b.add_edge(u, v, w as f64);
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sparse2d_matches_oracle((n, edges) in arb_graph(30), h in 2u32..4) {
        let g = build(n, &edges);
        let nd = nested_dissection(&g, h, &NdOptions::default());
        let layout = SupernodalLayout::from_ordering(&nd);
        let gp = g.permuted(&nd.perm);
        let result = sparse2d(&layout, &gp, R4Strategy::OneToOne);
        let dist = SupernodalLayout::unpermute(&result.dist_eliminated, &nd.perm);
        let reference = oracle::apsp_dijkstra(&g);
        prop_assert!(dist.first_mismatch(&reference, 1e-9).is_none());
        // the distance matrix of an undirected graph is symmetric
        prop_assert!(dist.is_symmetric(1e-9));
    }

    #[test]
    fn both_r4_strategies_agree((n, edges) in arb_graph(24)) {
        let g = build(n, &edges);
        let nd = nested_dissection(&g, 3, &NdOptions::default());
        let layout = SupernodalLayout::from_ordering(&nd);
        let gp = g.permuted(&nd.perm);
        let a = sparse2d(&layout, &gp, R4Strategy::OneToOne);
        let b = sparse2d(&layout, &gp, R4Strategy::SequentialUnits);
        prop_assert!(a.dist_eliminated.first_mismatch(&b.dist_eliminated, 1e-9).is_none());
    }

    #[test]
    fn superfw_matches_oracle((n, edges) in arb_graph(30), h in 1u32..5) {
        let g = build(n, &edges);
        let nd = nested_dissection(&g, h, &NdOptions::default());
        let (dist, _) = superfw_apsp(&g, &nd);
        let reference = oracle::apsp_dijkstra(&g);
        prop_assert!(dist.first_mismatch(&reference, 1e-9).is_none());
    }

    #[test]
    fn fw2d_matches_oracle((n, edges) in arb_graph(24), ng in 1usize..4) {
        let g = build(n, &edges);
        let result = fw2d(&g, ng);
        let reference = oracle::apsp_dijkstra(&g);
        prop_assert!(result.dist.first_mismatch(&reference, 1e-9).is_none());
    }

    #[test]
    fn dcapsp_matches_oracle((n, edges) in arb_graph(20), depth in 0u32..3) {
        let g = build(n, &edges);
        let result = dc_apsp(&g, 3, depth);
        let reference = oracle::apsp_dijkstra(&g);
        prop_assert!(result.dist.first_mismatch(&reference, 1e-9).is_none());
    }

    #[test]
    fn directed_sparse2d_matches_directed_oracle(
        (n, edges) in arb_graph(24),
        drops in proptest::collection::vec(proptest::bool::ANY, 3 * 24),
    ) {
        // random digraph: independent weights per direction, some one-way
        let mut b = apsp_graph::DiGraphBuilder::new(n);
        for (idx, &(u, v, w)) in edges.iter().enumerate() {
            if u == v {
                continue;
            }
            let keep_fwd = drops.get(idx % drops.len()).copied().unwrap_or(true);
            let keep_bwd = drops.get((idx + 7) % drops.len()).copied().unwrap_or(true);
            if keep_fwd {
                b.add_arc(u, v, w as f64);
            }
            if keep_bwd || !keep_fwd {
                b.add_arc(v, u, (w / 2 + 1) as f64);
            }
        }
        let dg = b.build();
        let pattern = dg.underlying_pattern();
        let nd = nested_dissection(&pattern, 3, &NdOptions::default());
        let layout = SupernodalLayout::from_ordering(&nd);
        let dgp = dg.permuted(&nd.perm);
        let result = apsp_core::sparse2d::sparse2d_directed(
            &layout,
            &dgp,
            &apsp_core::sparse2d::Sparse2dOptions::default(),
        );
        let reference = apsp_graph::digraph::apsp_dijkstra_directed(&dgp);
        prop_assert!(result.dist_eliminated.first_mismatch(&reference, 1e-9).is_none());
    }

    #[test]
    fn memory_stays_within_block_plus_temporaries((n, edges) in arb_graph(24)) {
        // every rank's peak ≤ its block + a constant number of same-order
        // temporaries (§5.4.1: M = O(n²/p + |S|²))
        let g = build(n, &edges);
        let nd = nested_dissection(&g, 2, &NdOptions::default());
        let layout = SupernodalLayout::from_ordering(&nd);
        let gp = g.permuted(&nd.perm);
        let result = sparse2d(&layout, &gp, R4Strategy::OneToOne);
        let max_block = (1..=layout.n_super())
            .flat_map(|i| (1..=layout.n_super()).map(move |j| (i, j)))
            .map(|(i, j)| layout.block_words(i, j))
            .max()
            .unwrap_or(0) as u64;
        for (rank, stats) in result.report.per_rank.iter().enumerate() {
            prop_assert!(
                stats.peak_words <= 8 * max_block.max(1),
                "rank {rank}: peak {} vs max block {max_block}",
                stats.peak_words
            );
        }
    }
}
