//! Distributed batched distance updates — the incremental-use regime that
//! motivates FW-structured APSP over re-running per-source searches.
//!
//! Given a solved distributed distance matrix (blocks on the `√p × √p`
//! grid) and a batch of **decreased** edge weights, the classic relaxation
//!
//! ```text
//! D'(x, y) = min(D(x, y), D(x, u) + w' + D(v, y), D(x, v) + w' + D(u, y))
//! ```
//!
//! needs, per changed edge `(u, v)`, the distance *column* of `u` and
//! *row* of `v` (and symmetrically). On the block layout those live in one
//! block column / row, so the update costs two broadcasts of
//! `O(n/√p)`-word vectors per edge — `O(k·log p)` latency and
//! `O(k·n·log p/√p)` bandwidth for a batch of `k` edges, versus a full
//! re-solve for the per-source baseline. (Weight *increases* invalidate
//! paths and need a re-solve; decrease-only is the standard incremental
//! direction.)
//!
//! Chained decreases within one batch are handled by processing the batch
//! edges sequentially (each edge's broadcast reads post-previous-edge
//! distances), so a batch whose edges form a new shortcut path is still
//! exact.

use crate::supernodal::SupernodalLayout;
use apsp_graph::DenseDist;
use apsp_minplus::MinPlusMatrix;
use apsp_simnet::{Comm, Machine, RunReport};

/// One decreased edge, in *eliminated* vertex numbering.
#[derive(Clone, Copy, Debug)]
pub struct DecreasedEdge {
    /// One endpoint (eliminated-order index).
    pub u: usize,
    /// Other endpoint.
    pub v: usize,
    /// The new, smaller weight.
    pub new_weight: f64,
}

/// Result of a batched update run.
pub struct UpdateResult {
    /// The updated distance matrix (eliminated ordering).
    pub dist_eliminated: DenseDist,
    /// Measured cost of the update alone.
    pub report: RunReport,
}

fn tag(edge_idx: usize, phase: u64, aux: usize) -> u64 {
    0x0BDA_0000_0000 | ((edge_idx as u64) << 20) | (phase << 16) | aux as u64
}

/// The per-rank program: relax every batch edge against the local block.
fn rank_program(
    comm: &mut Comm,
    layout: &SupernodalLayout,
    blocks_in: &[MinPlusMatrix],
    batch: &[DecreasedEdge],
) -> Vec<f64> {
    let (bi, bj) = layout.block_of_rank(comm.rank());
    let rank_of = |i: usize, j: usize| layout.rank_of_block(i, j);
    let n_super = layout.n_super();
    let mut block = blocks_in[comm.rank()].clone();
    comm.alloc(block.words());

    for (e_idx, edge) in batch.iter().enumerate() {
        // supernode and in-block offset of each endpoint
        let locate = |x: usize| {
            let mut k = 1;
            while layout.offset(k) + layout.size(k) <= x {
                k += 1;
            }
            (k, x - layout.offset(k))
        };
        let (su, ou) = locate(edge.u);
        let (sv, ov) = locate(edge.v);

        // Phase 1: block-column su broadcasts each rank's local column of u
        // along its row; block-row sv broadcasts each rank's local row of v
        // down its column. Every rank then knows D(x, u) for its block rows
        // x and D(v, y) for its block cols y.
        let row_group: Vec<usize> = (1..=n_super).map(|j| rank_of(bi, j)).collect();
        let col_u = {
            let root = rank_of(bi, su);
            let payload = (bj == su)
                .then(|| (0..block.rows()).map(|r| block.get(r, ou)).collect::<Vec<f64>>());
            comm.bcast(&row_group, root, tag(e_idx, 1, bi), payload)
        };
        let col_group: Vec<usize> = (1..=n_super).map(|i| rank_of(i, bj)).collect();
        let row_v = {
            let root = rank_of(sv, bj);
            let payload = (bi == sv)
                .then(|| (0..block.cols()).map(|c| block.get(ov, c)).collect::<Vec<f64>>());
            comm.bcast(&col_group, root, tag(e_idx, 2, bj), payload)
        };
        // the symmetric pair: column of v along rows, row of u down columns
        let col_v = {
            let root = rank_of(bi, sv);
            let payload = (bj == sv)
                .then(|| (0..block.rows()).map(|r| block.get(r, ov)).collect::<Vec<f64>>());
            comm.bcast(&row_group, root, tag(e_idx, 3, bi), payload)
        };
        let row_u = {
            let root = rank_of(su, bj);
            let payload = (bi == su)
                .then(|| (0..block.cols()).map(|c| block.get(ou, c)).collect::<Vec<f64>>());
            comm.bcast(&col_group, root, tag(e_idx, 4, bj), payload)
        };
        comm.alloc(col_u.len() + row_v.len() + col_v.len() + row_u.len());

        // Phase 2: local relaxation through the decreased edge
        let w = edge.new_weight;
        let mut ops = 0u64;
        for r in 0..block.rows() {
            let through_u = col_u[r] + w;
            let through_v = col_v[r] + w;
            for c in 0..block.cols() {
                let cand = (through_u + row_v[c]).min(through_v + row_u[c]);
                ops += 2;
                if cand < block.get(r, c) {
                    block.set(r, c, cand);
                }
            }
        }
        comm.compute(ops);
        comm.release(col_u.len() + row_v.len() + col_v.len() + row_u.len());
    }

    block.into_vec()
}

/// Applies a batch of decreased edges to a solved distributed distance
/// matrix. `blocks` holds each rank's block (eliminated order, row-major
/// by rank, as produced by `sparse2d`); edges use eliminated vertex
/// indices. Edges must not create negative cycles (weights stay ≥ 0).
pub fn apply_decreases(
    layout: &SupernodalLayout,
    blocks: &[MinPlusMatrix],
    batch: &[DecreasedEdge],
) -> UpdateResult {
    assert_eq!(blocks.len(), layout.p(), "one block per rank");
    for e in batch {
        assert!(e.new_weight >= 0.0, "negative weights form negative cycles");
        assert!(e.u < layout.n() && e.v < layout.n(), "endpoint out of range");
        assert_ne!(e.u, e.v, "self loops carry no distance information");
    }
    let (out, report) = Machine::run(layout.p(), |comm| rank_program(comm, layout, blocks, batch));
    let new_blocks: Vec<MinPlusMatrix> = out
        .into_iter()
        .enumerate()
        .map(|(rank, data)| {
            let (i, j) = layout.block_of_rank(rank);
            MinPlusMatrix::from_raw(layout.size(i), layout.size(j), data)
        })
        .collect();
    UpdateResult { dist_eliminated: layout.assemble_dense(&new_blocks), report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse2d::{sparse2d, R4Strategy};
    use apsp_graph::generators::{self, WeightKind};
    use apsp_graph::oracle;
    use apsp_partition::grid_nd;

    /// Solve, decrease some edges, update, and check against a re-solved
    /// oracle on the modified graph.
    fn check(side: usize, h: u32, decreases: &[(usize, usize, f64)]) -> (RunReport, RunReport) {
        let g = generators::grid2d(side, side, WeightKind::Integer { max: 9 }, 3);
        let nd = grid_nd(side, side, h);
        let layout = SupernodalLayout::from_ordering(&nd);
        let gp = g.permuted(&nd.perm);
        let solved = sparse2d(&layout, &gp, R4Strategy::OneToOne);

        // recover each rank's block from the solved dense matrix
        let blocks: Vec<MinPlusMatrix> = (0..layout.p())
            .map(|rank| {
                let (i, j) = layout.block_of_rank(rank);
                let (ri, rj) = (layout.range(i), layout.range(j));
                MinPlusMatrix::from_fn(ri.len(), rj.len(), |r, c| {
                    solved.dist_eliminated.get(ri.start + r, rj.start + c)
                })
            })
            .collect();

        // batch in eliminated coordinates; build the modified graph too
        let mut b = apsp_graph::GraphBuilder::new(g.n());
        for (u, v, w) in g.edges() {
            b.add_edge(u, v, w);
        }
        let batch: Vec<DecreasedEdge> = decreases
            .iter()
            .map(|&(u, v, w)| {
                b.add_edge(u, v, w); // builder keeps the minimum
                DecreasedEdge { u: nd.perm.to_new(u), v: nd.perm.to_new(v), new_weight: w }
            })
            .collect();
        let modified = b.build();

        let updated = apply_decreases(&layout, &blocks, &batch);
        let dist = SupernodalLayout::unpermute(&updated.dist_eliminated, &nd.perm);
        let reference = oracle::apsp_dijkstra(&modified);
        if let Some((i, j, a, bb)) = dist.first_mismatch(&reference, 1e-9) {
            panic!("mismatch at ({i},{j}): got {a}, expected {bb}");
        }
        (updated.report, solved.report)
    }

    #[test]
    fn single_shortcut_edge() {
        // a diagonal shortcut across the mesh
        check(8, 2, &[(0, 63, 1.0)]);
    }

    #[test]
    fn batch_of_three_edges() {
        check(8, 3, &[(0, 63, 2.0), (7, 56, 1.0), (27, 36, 0.5)]);
    }

    #[test]
    fn chained_batch_forms_a_new_path() {
        // two edges that only help *together*: 0→30 and 30→63
        check(8, 2, &[(0, 30, 0.5), (30, 63, 0.5)]);
    }

    #[test]
    fn no_op_decrease_changes_nothing() {
        // "decreasing" to a weight larger than current distances is a no-op
        let (update_report, _) = check(6, 2, &[(0, 35, 1000.0)]);
        assert!(update_report.total_messages() > 0, "broadcasts still happen");
    }

    #[test]
    fn update_is_much_cheaper_than_resolve() {
        let (update_report, solve_report) = check(12, 3, &[(0, 143, 1.0)]);
        assert!(
            update_report.critical_bandwidth() * 2 < solve_report.critical_bandwidth(),
            "update {} vs solve {}",
            update_report.critical_bandwidth(),
            solve_report.critical_bandwidth()
        );
        assert!(update_report.critical_latency() < solve_report.critical_latency());
    }

    #[test]
    fn zero_weight_decrease() {
        check(6, 2, &[(0, 1, 0.0)]);
    }

    #[test]
    #[should_panic(expected = "negative weights")]
    fn negative_decrease_rejected() {
        let layout = SupernodalLayout::new(apsp_etree::SchedTree::new(1), vec![2]);
        let blocks = vec![MinPlusMatrix::identity(2)];
        let _ =
            apply_decreases(&layout, &blocks, &[DecreasedEdge { u: 0, v: 1, new_weight: -1.0 }]);
    }
}
