//! Closed-form cost predictions (§5.4) and lower bounds (§6) for overlaying
//! against measured numbers in the experiment reports.
//!
//! All formulas are asymptotic; the functions below return the formula
//! *bodies* (no hidden constants), which is what a scaling study plots.

pub use apsp_verify::costcheck::{fit_loglog, LogLogFit};

/// `log₂ p`, as a float, clamped to ≥ 1 so `log²p` terms never vanish for
/// tiny `p`.
pub fn log2p(p: usize) -> f64 {
    (p.max(2) as f64).log2().max(1.0)
}

/// Predicted per-process memory of 2D-SPARSE-APSP (§5.4.1):
/// `n²/p + |S|²` words.
pub fn sparse_memory(n: usize, p: usize, s: usize) -> f64 {
    (n * n) as f64 / p as f64 + (s * s) as f64
}

/// Predicted bandwidth of 2D-SPARSE-APSP (Theorem 5.10):
/// `n²·log²p / p + |S|²·log²p`.
pub fn sparse_bandwidth(n: usize, p: usize, s: usize) -> f64 {
    let l2 = log2p(p) * log2p(p);
    (n * n) as f64 * l2 / p as f64 + (s * s) as f64 * l2
}

/// Predicted latency of 2D-SPARSE-APSP (Theorem 5.7): `log²p`.
pub fn sparse_latency(p: usize) -> f64 {
    log2p(p) * log2p(p)
}

/// 2D-DC-APSP bandwidth (§2 / Table 2): `n²/√p`.
pub fn dc_bandwidth(n: usize, p: usize) -> f64 {
    (n * n) as f64 / (p as f64).sqrt()
}

/// 2D-DC-APSP latency (Table 2): `√p·log²p`.
pub fn dc_latency(p: usize) -> f64 {
    (p as f64).sqrt() * log2p(p) * log2p(p)
}

/// Sparse-graph bandwidth lower bound (Theorem 6.5): `n²/p + |S|²`.
pub fn lower_bound_bandwidth(n: usize, p: usize, s: usize) -> f64 {
    (n * n) as f64 / p as f64 + (s * s) as f64
}

/// Sparse-graph latency lower bound (Theorem 6.5): `log²p`.
pub fn lower_bound_latency(p: usize) -> f64 {
    log2p(p) * log2p(p)
}

/// Memory lower bound (Table 2): `n²/p`.
pub fn lower_bound_memory(n: usize, p: usize) -> f64 {
    (n * n) as f64 / p as f64
}

/// The §5.5 bandwidth improvement factor of the sparse algorithm over
/// 2D-DC-APSP: `min(√p/log²p, n²/(|S|²·√p·log²p))` (we keep the paper's
/// abstract-level exponent; §5.5 prints `log³p` for the second term, the
/// discrepancy with §1's `log²p` being a paper-internal inconsistency we
/// note in EXPERIMENTS.md).
pub fn improvement_factor(n: usize, p: usize, s: usize) -> f64 {
    let sqrt_p = (p as f64).sqrt();
    let l2 = log2p(p) * log2p(p);
    let a = sqrt_p / l2;
    let b = (n * n) as f64 / ((s * s) as f64 * sqrt_p * l2).max(1.0);
    a.min(b)
}

/// The exact 3NL operation count `F = Σ_{(i,j)} |S_ij|` of §6 (Definition
/// 6.1 / Equation 5) for a supernodal layout: pairs `(i, j)` range over all
/// vertex pairs, and `S_ij` collects the vertices of every supernode
/// related to **both** endpoints' supernodes. This is precisely the work
/// the supernodal elimination performs (each pivot vertex `k ∈ S_ij`
/// contributes one relaxation to `A_ij`), so `superfw`'s measured op count
/// matches it up to `∞`-row skipping.
pub fn three_nl_operations(layout: &crate::SupernodalLayout) -> u128 {
    let t = layout.tree();
    let n_super = layout.n_super();
    let mut total: u128 = 0;
    for u in 1..=n_super {
        if layout.size(u) == 0 {
            continue;
        }
        for v in 1..=n_super {
            if layout.size(v) == 0 {
                continue;
            }
            let mut common = 0u128;
            for w in 1..=n_super {
                if t.related(w, u) && t.related(w, v) {
                    common += layout.size(w) as u128;
                }
            }
            total += layout.size(u) as u128 * layout.size(v) as u128 * common;
        }
    }
    total
}

/// Lemma 6.4's lower bound on the 3NL operations: `(n − |S|)² · |S|`.
pub fn three_nl_lower_bound(n: usize, s: usize) -> u128 {
    let body = n.saturating_sub(s) as u128;
    body * body * s as u128
}

/// Cited cost of computing one separator on `p` processors
/// (Karypis–Kumar \[18\], §4.1): bandwidth `n·log p/√p`, latency `log p`.
pub fn separator_bandwidth(n: usize, p: usize) -> f64 {
    n as f64 * log2p(p) / (p as f64).sqrt()
}

/// Cited per-level separator latency: `log p`.
pub fn separator_latency(p: usize) -> f64 {
    log2p(p)
}

/// 2D-DC-APSP per-process memory (Table 2): `n²/p`.
pub fn dc_memory(n: usize, p: usize) -> f64 {
    (n * n) as f64 / p as f64
}

/// Blocked 2D Floyd–Warshall bandwidth (§2): `n²·log p/√p` — one row and
/// one column panel broadcast along each grid dimension per pivot block.
pub fn fw2d_bandwidth(n: usize, p: usize) -> f64 {
    (n * n) as f64 * log2p(p) / (p as f64).sqrt()
}

/// Blocked 2D Floyd–Warshall latency (§2): `√p·log p` — `√p` pivot
/// rounds, each a pair of `O(log √p)` broadcasts.
pub fn fw2d_latency(p: usize) -> f64 {
    (p as f64).sqrt() * log2p(p)
}

/// Distributed Johnson bandwidth (§2): `(n + 2m)·log p` — the packed
/// graph (CSR offsets + 2m weighted arcs) broadcast once; rows stay
/// local afterwards.
pub fn johnson_bandwidth(n: usize, m: usize, p: usize) -> f64 {
    (n + 2 * m) as f64 * log2p(p)
}

/// Distributed Johnson latency: `log p` — a single broadcast tree.
pub fn johnson_latency(p: usize) -> f64 {
    log2p(p)
}

/// Distributed Johnson per-process memory: `n²/p + n + 2m` — the owned
/// row block plus a full replicated graph.
pub fn johnson_memory(n: usize, m: usize, p: usize) -> f64 {
    (n * n) as f64 / p as f64 + (n + 2 * m) as f64
}

/// Inverts Theorem 5.10: given a *measured* critical-path bandwidth `b`
/// for 2D-SPARSE-APSP on `(n, p)`, returns the separator size the bound
/// would need to explain it — `√(max(0, b/log²p − n²/p))`. Overlaying
/// this against the ordering's actual top separator turns a bandwidth
/// regression into a statement in the paper's own vocabulary ("you are
/// communicating as if |S| were 90, but the ordering found 14").
pub fn implied_separator(bandwidth: f64, n: usize, p: usize) -> f64 {
    let l2 = log2p(p) * log2p(p);
    (bandwidth / l2 - (n * n) as f64 / p as f64).max(0.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2p_is_clamped() {
        assert_eq!(log2p(1), 1.0);
        assert_eq!(log2p(2), 1.0);
        assert_eq!(log2p(1024), 10.0);
    }

    #[test]
    fn sparse_beats_dense_for_small_separators() {
        // the bandwidth advantage needs √p > log²p, i.e. large machines:
        // n = 10⁶ grid-ish (|S| = 10³), p = 2²⁰
        let (n, p, s) = (1_000_000, 1 << 20, 1000);
        assert!(sparse_bandwidth(n, p, s) < dc_bandwidth(n, p));
        assert!(sparse_latency(p) < dc_latency(p));
        // the latency advantage is visible even at simulation scale
        assert!(sparse_latency(225) < dc_latency(225));
    }

    #[test]
    fn dense_separator_erases_the_advantage() {
        // |S| = n: the sparse formula exceeds the dense one
        let (n, p) = (1000, 225);
        assert!(sparse_bandwidth(n, p, n) > dc_bandwidth(n, p));
    }

    #[test]
    fn bounds_dominate_predictions_in_shape() {
        // predictions exceed their lower bounds by polylog factors only
        let (n, p, s) = (4096, 961, 64);
        let ratio_b = sparse_bandwidth(n, p, s) / lower_bound_bandwidth(n, p, s);
        let l2 = log2p(p) * log2p(p);
        assert!((ratio_b - l2).abs() < 1e-9, "bandwidth gap is exactly log²p");
        assert_eq!(sparse_latency(p), lower_bound_latency(p));
    }

    #[test]
    fn three_nl_count_matches_measured_superfw_ops() {
        use apsp_graph::generators::{self, WeightKind};
        // on a connected unit-weight mesh no ∞-row skipping happens after
        // the first pivots, so measured ops sit close under the formula
        let g = generators::grid2d(10, 10, WeightKind::Unit, 0);
        let nd = apsp_partition::grid_nd(10, 10, 3);
        let layout = crate::SupernodalLayout::from_ordering(&nd);
        let f = three_nl_operations(&layout);
        let (_, stats) = crate::superfw::superfw_apsp(&g, &nd);
        assert!((stats.ops as u128) <= f, "measured {} > F {f}", stats.ops);
        assert!((stats.ops as u128) * 2 >= f, "measured {} under half of F {f}", stats.ops);
        // Lemma 6.4: F ≥ (n − |S|)²·|S|
        assert!(f >= three_nl_lower_bound(g.n(), nd.top_separator()));
    }

    #[test]
    fn three_nl_dense_layout_is_n_cubed() {
        // a single supernode holding everything: F = n³ (classical FW)
        let layout = crate::SupernodalLayout::new(apsp_etree::SchedTree::new(1), vec![12]);
        assert_eq!(three_nl_operations(&layout), 12u128 * 12 * 12);
    }

    #[test]
    fn implied_separator_inverts_the_bound() {
        // b = sparse_bandwidth(n, p, s) must imply exactly s back
        let (n, p, s) = (4096, 961, 64);
        let b = sparse_bandwidth(n, p, s);
        assert!((implied_separator(b, n, p) - s as f64).abs() < 1e-6);
        // a bandwidth below the n²/p floor implies no separator at all
        assert_eq!(implied_separator(0.0, n, p), 0.0);
    }

    #[test]
    fn dense_and_johnson_forms_scale_as_documented() {
        // fw2d bandwidth falls like 1/√p at fixed n — visible once √p
        // outruns the log factor (at p ≤ 16 the two exactly cancel)
        assert!(fw2d_bandwidth(64, 64) < fw2d_bandwidth(64, 4));
        // fw2d latency grows with p; johnson latency only logarithmically
        assert!(fw2d_latency(16) > fw2d_latency(4));
        assert!(johnson_latency(1 << 20) <= 20.0);
        // johnson bandwidth is graph-sized — for sparse graphs (m = O(n))
        // it undercuts the dense n²-shaped bound once n dominates log p
        assert!(johnson_bandwidth(1000, 3000, 16) < dc_bandwidth(1000, 16));
        // dc memory is the n²/p lower bound body
        assert_eq!(dc_memory(100, 4), lower_bound_memory(100, 4));
        assert!(johnson_memory(100, 300, 4) > dc_memory(100, 4));
    }

    #[test]
    fn improvement_factor_positive() {
        // advantageous regime: huge machine, tiny separator
        assert!(improvement_factor(1_000_000, 1 << 20, 1000) > 1.0);
        // dense separator: no advantage at any scale
        assert!(improvement_factor(100, 225, 100) < 1.0);
    }
}
