//! Distributed nested dissection on the simulated machine — the measured
//! version of the §4.1/§5.4.4 ordering pipeline (a simplified
//! Karypis–Kumar \[18\]; the simplifications are listed in DESIGN.md §1).
//!
//! Per tree node, the owning rank group runs:
//!
//! 1. **directory all-gather** — every member learns the node's vertex→rank
//!    assignment;
//! 2. **local coarsening** — each rank contracts its own induced subgraph
//!    with heavy-edge matching (no communication);
//! 3. **boundary exchange** — coarse ids of boundary vertices travel to the
//!    neighbouring owners (one point-to-point round);
//! 4. **coarse all-gather + replicated bisection** — the small coarse graph
//!    is replicated and every member runs the identical seeded multilevel
//!    bisection (zero further communication);
//! 5. **separator extraction** — fine cut edges (locally identifiable
//!    thanks to step 3) are gathered to the group root, which computes the
//!    Kőnig minimum vertex cover and broadcasts it: the node's separator
//!    supernode, *minimal on the fine graph*;
//! 6. **redistribution** — each half's vertices move to its half of the
//!    rank group, and the two halves recurse concurrently.
//!
//! Rank groups halve with the tree; once a group reaches one rank it
//! finishes its subtree with the sequential partitioner. All communication
//! is measured; the resulting ordering is a drop-in [`NdOrdering`].

use crate::fw2d::balanced_sizes;
use apsp_etree::SchedTree;
use apsp_graph::{Csr, Permutation};
use apsp_partition::separator::min_vertex_cover_bipartite;
use apsp_partition::work::WorkGraph;
use apsp_partition::{nested_dissection, BisectOptions, NdOptions, NdOrdering};
use apsp_simnet::{Comm, Machine, Rank, RunReport};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Result of [`dist_nested_dissection`]: the ordering plus the measured
/// communication bill of the whole pipeline.
pub struct DistNdResult {
    /// The computed ordering (validates like any other [`NdOrdering`]).
    pub ordering: NdOrdering,
    /// Measured costs of the distributed pipeline.
    pub report: RunReport,
}

fn ids_to_f64(ids: &[usize]) -> Vec<f64> {
    ids.iter().map(|&x| x as f64).collect()
}

fn f64_to_ids(data: &[f64]) -> Vec<usize> {
    data.iter().map(|&x| x as usize).collect()
}

fn tag(label: usize, step: u64) -> u64 {
    0xD0D0_0000_0000 | ((label as u64) << 12) | step
}

/// Per-node distributed state of one rank.
struct NodeCtx<'a> {
    g: &'a Csr,
    tree: SchedTree,
    seed: u64,
}

impl NodeCtx<'_> {
    /// Recursion over tree nodes; records `(label, vertex list)` facts this
    /// rank is responsible for into `out`.
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        &self,
        comm: &mut Comm,
        level: u32,
        idx: usize,
        group: &[Rank],
        my_verts: Vec<usize>,
        out: &mut Vec<(usize, Vec<usize>)>,
    ) {
        let label = self.tree.level_offset(level) + idx + 1;

        if group.len() == 1 {
            self.sequential_subtree(level, idx, my_verts, out);
            return;
        }
        if level == 1 {
            // leaf supernode: collect the group's vertices at the root
            let mut leaf_span = comm.span("nd-leaf", label as u64);
            let gathered = leaf_span.gather(group, group[0], tag(label, 0), ids_to_f64(&my_verts));
            if let Some(parts) = gathered {
                let mut all = Vec::new();
                for part in parts {
                    all.extend(f64_to_ids(&part));
                }
                out.push((label, all));
            }
            return;
        }

        // ---- step 0: directory all-gather ----
        let lists = {
            let mut span = comm.span("nd-directory", label as u64);
            span.allgather(group, tag(label, 1), ids_to_f64(&my_verts))
        };
        let mut owner_of: HashMap<usize, usize> = HashMap::new(); // vertex -> group pos
        for (pos, list) in lists.iter().enumerate() {
            for &v in list {
                owner_of.insert(v as usize, pos);
            }
        }
        let my_pos =
            group.iter().position(|&r| r == comm.rank()).expect("every rank sits in its own group");

        // ---- step 1: local coarsening (no communication) ----
        let (sub, ids) = self.g.induced_subgraph(&my_verts);
        let work = WorkGraph::from_csr(&sub);
        let hierarchy = apsp_partition::coarsen::coarsen(&work, 8, self.seed ^ label as u64);
        // compose the chain of maps: local fine index -> local coarse index
        let mut to_coarse: Vec<usize> = (0..sub.n()).collect();
        for lvl in &hierarchy {
            for c in to_coarse.iter_mut() {
                *c = lvl.map[*c] as usize;
            }
        }
        let (coarse_n, coarse_wts): (usize, Vec<u64>) = match hierarchy.last() {
            Some(lvl) => (lvl.graph.n(), lvl.graph.vwt.clone()),
            None => (sub.n(), vec![1; sub.n()]),
        };
        // globally unique coarse ids: group position × stride + local index
        let stride = self.g.n() + 1;
        let cid = |pos: usize, local: usize| pos * stride + local;
        // lookup table: owned global vertex -> local index in `sub`/`ids`
        let mut local_of: HashMap<usize, usize> = HashMap::new();
        for (li, &v) in ids.iter().enumerate() {
            local_of.insert(v, li);
        }

        // ---- step 2: boundary coarse-id exchange ----
        // cross edges: owned u, neighbour v owned by another rank of this node
        let mut to_targets: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new(); // pos -> my boundary verts
        let mut from_sources: BTreeSet<usize> = BTreeSet::new();
        for &u in &my_verts {
            for (v, _) in self.g.edges_of(u) {
                if let Some(&pos) = owner_of.get(&v) {
                    if pos != my_pos {
                        to_targets.entry(pos).or_default().insert(u);
                        from_sources.insert(pos);
                    }
                }
            }
        }
        let mut remote_cid: HashMap<usize, usize> = HashMap::new();
        {
            let mut span = comm.span("nd-boundary", label as u64);
            let comm: &mut Comm = &mut span;
            for (&pos, verts) in &to_targets {
                let mut payload = Vec::with_capacity(2 * verts.len());
                for &u in verts {
                    payload.push(u as f64);
                    payload.push(cid(my_pos, to_coarse[local_of[&u]]) as f64);
                }
                comm.send(group[pos], tag(label, 2), payload);
            }
            for &pos in &from_sources {
                let data = comm.recv(group[pos], tag(label, 2));
                for pair in data.chunks_exact(2) {
                    remote_cid.insert(pair[0] as usize, pair[1] as usize);
                }
            }
        }

        // ---- step 3: coarse graph all-gather ----
        let mut contribution = Vec::new();
        contribution.push(coarse_n as f64);
        for (local, &w) in coarse_wts.iter().enumerate() {
            contribution.push(cid(my_pos, local) as f64);
            contribution.push(w as f64);
        }
        // local coarse edges (with multiplicities) + cross fine edges (u < v)
        let mut edges: Vec<(usize, usize, u64)> = Vec::new();
        if let Some(lvl) = hierarchy.last() {
            let cg = &lvl.graph;
            for a in 0..cg.n() {
                for (&b, &w) in cg.neighbors(a).iter().zip(cg.edge_weights(a)) {
                    if a < b as usize {
                        edges.push((cid(my_pos, a), cid(my_pos, b as usize), w));
                    }
                }
            }
        } else {
            for (a, b, _) in sub.edges() {
                edges.push((cid(my_pos, to_coarse[a]), cid(my_pos, to_coarse[b]), 1));
            }
        }
        for &u in &my_verts {
            for (v, _) in self.g.edges_of(u) {
                if u < v {
                    if let Some(&pos) = owner_of.get(&v) {
                        if pos != my_pos {
                            edges.push((cid(my_pos, to_coarse[local_of[&u]]), remote_cid[&v], 1));
                        }
                    }
                }
            }
        }
        contribution.push(edges.len() as f64);
        for &(a, b, w) in &edges {
            contribution.push(a as f64);
            contribution.push(b as f64);
            contribution.push(w as f64);
        }
        let gathered = {
            let mut span = comm.span("nd-coarse", label as u64);
            span.allgather(group, tag(label, 3), contribution)
        };

        // replicated coarse graph: parse deterministically in group order
        let mut cid_weight: BTreeMap<usize, u64> = BTreeMap::new();
        let mut all_edges: Vec<(usize, usize, u64)> = Vec::new();
        for part in &gathered {
            let mut cursor = 0usize;
            let cnt = part[cursor] as usize;
            cursor += 1;
            for _ in 0..cnt {
                cid_weight.insert(part[cursor] as usize, part[cursor + 1] as u64);
                cursor += 2;
            }
            let ecnt = part[cursor] as usize;
            cursor += 1;
            for _ in 0..ecnt {
                all_edges.push((
                    part[cursor] as usize,
                    part[cursor + 1] as usize,
                    part[cursor + 2] as u64,
                ));
                cursor += 3;
            }
        }
        let dense_of: HashMap<usize, usize> =
            cid_weight.keys().enumerate().map(|(i, &c)| (c, i)).collect();
        let vwt: Vec<u64> = cid_weight.values().copied().collect();
        let dense_edges: Vec<(u32, u32, u64)> = all_edges
            .iter()
            .map(|&(a, b, w)| (dense_of[&a] as u32, dense_of[&b] as u32, w))
            .collect();
        let coarse = WorkGraph::from_edges(cid_weight.len(), &dense_edges, vwt);

        // ---- step 4: replicated bisection (identical seed ⇒ identical result) ----
        let opts = BisectOptions { seed: self.seed ^ (label as u64) << 3, ..Default::default() };
        let bisection = apsp_partition::bisect::bisect_work(&coarse, &opts);

        // ---- step 5: local projection ----
        let side_of = |v: usize,
                       local_of: &HashMap<usize, usize>,
                       remote_cid: &HashMap<usize, usize>|
         -> u8 {
            let c = match local_of.get(&v) {
                Some(&li) => cid(my_pos, to_coarse[li]),
                None => remote_cid[&v],
            };
            bisection.side[dense_of[&c]]
        };

        // ---- step 6/7: fine cut edges, oriented (side0, side1) ----
        let mut cut: Vec<f64> = Vec::new();
        for &u in &my_verts {
            let su = side_of(u, &local_of, &remote_cid);
            for (v, _) in self.g.edges_of(u) {
                if u < v && owner_of.contains_key(&v) {
                    let sv = side_of(v, &local_of, &remote_cid);
                    if su != sv {
                        let (a, b) = if su == 0 { (u, v) } else { (v, u) };
                        cut.push(a as f64);
                        cut.push(b as f64);
                    }
                }
            }
        }
        let cover: BTreeSet<usize> = {
            let mut span = comm.span("nd-separator", label as u64);
            let comm: &mut Comm = &mut span;
            let gathered_cut = comm.gather(group, group[0], tag(label, 4), cut);
            let cover_payload = gathered_cut.map(|parts| {
                let mut pairs = Vec::new();
                for part in parts {
                    for pair in part.chunks_exact(2) {
                        pairs.push((pair[0] as usize, pair[1] as usize));
                    }
                }
                let cover = min_vertex_cover_bipartite(&pairs);
                out.push((label, cover.clone()));
                ids_to_f64(&cover)
            });
            f64_to_ids(&comm.bcast(group, group[0], tag(label, 5), cover_payload))
                .into_iter()
                .collect()
        };

        // ---- step 8: split and redistribute ----
        let mut side0 = Vec::new();
        let mut side1 = Vec::new();
        for &u in &my_verts {
            if cover.contains(&u) {
                continue;
            }
            if side_of(u, &local_of, &remote_cid) == 0 {
                side0.push(u);
            } else {
                side1.push(u);
            }
        }
        let gl = (group.len() / 2).max(1);
        let left_group: Vec<Rank> = group[..gl].to_vec();
        let right_group: Vec<Rank> = group[gl..].to_vec();

        let my_new = {
            let mut span = comm.span("nd-redist", label as u64);
            let comm: &mut Comm = &mut span;
            let counts =
                comm.allgather(group, tag(label, 6), vec![side0.len() as f64, side1.len() as f64]);
            redistribute(
                comm,
                group,
                my_pos,
                label,
                [&side0, &side1],
                &counts,
                [&left_group, &right_group],
            )
        };

        // ---- step 9: recurse into my half (halves run concurrently) ----
        if my_pos < gl {
            self.recurse(comm, level - 1, 2 * idx, &left_group, my_new, out);
        } else {
            self.recurse(comm, level - 1, 2 * idx + 1, &right_group, my_new, out);
        }
    }

    /// One rank finishing an entire subtree with the sequential partitioner.
    fn sequential_subtree(
        &self,
        level: u32,
        idx: usize,
        my_verts: Vec<usize>,
        out: &mut Vec<(usize, Vec<usize>)>,
    ) {
        let (sub, ids) = self.g.induced_subgraph(&my_verts);
        let sub_tree = SchedTree::new(level);
        let nd = nested_dissection(
            &sub,
            level,
            &NdOptions {
                bisect: BisectOptions {
                    seed: self.seed ^ 0xFA11 ^ idx as u64,
                    ..Default::default()
                },
            },
        );
        let order = nd.perm.as_order();
        let offsets = nd.offsets();
        for lvl in 1..=level {
            let width = 1usize << (level - lvl);
            for t in 0..sub_tree.level_count(lvl) {
                let sub_label = sub_tree.level_offset(lvl) + t + 1;
                let glob_label = self.tree.level_offset(lvl) + idx * width + t + 1;
                let verts: Vec<usize> = order[offsets[sub_label - 1]..offsets[sub_label]]
                    .iter()
                    .map(|&local| ids[local])
                    .collect();
                out.push((glob_label, verts));
            }
        }
    }
}

/// Deterministic redistribution of the two side lists onto the two child
/// groups: side `s`'s global list (concatenation over the group in group
/// order) is chunked evenly over child group `s`; every rank derives the
/// full (source → target, length) matrix from the all-gathered counts.
fn redistribute(
    comm: &mut Comm,
    group: &[Rank],
    my_pos: usize,
    label: usize,
    my_sides: [&Vec<usize>; 2],
    counts: &[Vec<f64>],
    child_groups: [&Vec<Rank>; 2],
) -> Vec<usize> {
    // transfers[s] = list of (source pos, target pos, len) in deterministic order
    let mut sends: Vec<(Rank, Vec<f64>)> = Vec::new();
    let mut my_receives: Vec<(Rank, usize)> = Vec::new(); // (source rank, seq) for ordering
    for s in 0..2 {
        let per_rank: Vec<usize> = counts.iter().map(|c| c[s] as usize).collect();
        let total: usize = per_rank.iter().sum();
        let targets = child_groups[s];
        let chunk_sizes = balanced_sizes(total, targets.len());
        // walk the concatenated list, mapping [offset, offset+len) windows
        let mut src_start = 0usize; // global offset where source `pos` begins
        let mut tgt_bounds = Vec::with_capacity(targets.len() + 1);
        tgt_bounds.push(0usize);
        let mut acc = 0;
        for &c in &chunk_sizes {
            acc += c;
            tgt_bounds.push(acc);
        }
        for (pos, &cnt) in per_rank.iter().enumerate() {
            let src_range = src_start..src_start + cnt;
            for (ti, w) in tgt_bounds.windows(2).enumerate() {
                let (lo, hi) = (w[0].max(src_range.start), w[1].min(src_range.end));
                if lo >= hi {
                    continue;
                }
                // source `pos` sends its slice [lo-src_start, hi-src_start) to target ti
                if pos == my_pos {
                    let slice = &my_sides[s][lo - src_range.start..hi - src_range.start];
                    sends.push((targets[ti], ids_to_f64(slice)));
                }
                let my_rank = group[my_pos];
                if targets[ti] == my_rank {
                    my_receives.push((group[pos], my_receives.len()));
                }
            }
            src_start += cnt;
        }
    }
    // send everything (non-blocking), then receive in the deterministic order
    let mut received = Vec::new();
    let my_rank = group[my_pos];
    let mut self_delivery: Vec<Vec<usize>> = Vec::new();
    let mut pending: Vec<(Rank, usize)> = Vec::new();
    let mut self_seq: Vec<usize> = Vec::new();
    for (target, payload) in sends {
        if target == my_rank {
            self_delivery.push(f64_to_ids(&payload));
        } else {
            comm.send(target, tag(label, 7), payload);
        }
    }
    for (source, seq) in my_receives {
        if source == my_rank {
            self_seq.push(seq);
        } else {
            pending.push((source, seq));
        }
    }
    // receives in schedule order; self-deliveries splice back in seq order
    let mut parts: Vec<(usize, Vec<usize>)> = Vec::new();
    for (source, seq) in pending {
        parts.push((seq, f64_to_ids(&comm.recv(source, tag(label, 7)))));
    }
    for (k, seq) in self_seq.into_iter().enumerate() {
        parts.push((seq, self_delivery[k].clone()));
    }
    parts.sort_by_key(|&(seq, _)| seq);
    for (_, mut ids) in parts {
        received.append(&mut ids);
    }
    received
}

/// Runs the distributed nested-dissection pipeline on `p` simulated ranks.
///
/// The `ordering` satisfies the same invariants as the host-side
/// [`nested_dissection`] (checked by `NdOrdering::validate`); the `report`
/// is the measured §5.4.4 cost.
pub fn dist_nested_dissection(g: &Csr, h: u32, p: usize, seed: u64) -> DistNdResult {
    dist_nd_inner(g, h, p, seed, false)
}

/// Like [`dist_nested_dissection`], but the run is profiled. Rank groups
/// halve and recurse concurrently, so the per-rank span sequences diverge —
/// the phase breakdown falls back to the grouped (`exact = false`)
/// max-over-ranks attribution.
pub fn dist_nested_dissection_profiled(g: &Csr, h: u32, p: usize, seed: u64) -> DistNdResult {
    dist_nd_inner(g, h, p, seed, true)
}

fn dist_nd_inner(g: &Csr, h: u32, p: usize, seed: u64, profiled: bool) -> DistNdResult {
    assert!(p >= 1, "need at least one rank");
    let tree = SchedTree::new(h);
    let chunk_sizes = balanced_sizes(g.n(), p);
    let mut chunk_offsets = vec![0usize];
    let mut acc = 0;
    for &c in &chunk_sizes {
        acc += c;
        chunk_offsets.push(acc);
    }
    let program = |comm: &mut Comm| {
        let r = comm.rank();
        let my_verts: Vec<usize> = (chunk_offsets[r]..chunk_offsets[r + 1]).collect();
        let ctx = NodeCtx { g, tree, seed };
        let group: Vec<Rank> = (0..p).collect();
        let mut out = Vec::new();
        ctx.recurse(comm, h, 0, &group, my_verts, &mut out);
        out
    };
    let (outputs, report) =
        if profiled { Machine::run_profiled(p, program) } else { Machine::run(p, program) };
    // merge the per-rank facts
    let mut supernode_vertices: Vec<Vec<usize>> = vec![Vec::new(); tree.num_supernodes()];
    for rank_facts in outputs {
        for (label, verts) in rank_facts {
            assert!(
                supernode_vertices[label - 1].is_empty() || verts.is_empty(),
                "label {label} reported twice"
            );
            if !verts.is_empty() {
                supernode_vertices[label - 1] = verts;
            }
        }
    }
    let sizes: Vec<usize> = supernode_vertices.iter().map(|v| v.len()).collect();
    let order: Vec<usize> = supernode_vertices.into_iter().flatten().collect();
    let ordering =
        NdOrdering { tree, perm: Permutation::from_order(order), supernode_sizes: sizes };
    DistNdResult { ordering, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::generators::{self, WeightKind};

    fn check(g: &Csr, h: u32, p: usize) -> DistNdResult {
        let result = dist_nested_dissection(g, h, p, 42);
        result
            .ordering
            .validate(g)
            .unwrap_or_else(|e| panic!("h={h} p={p}: invalid ordering: {e}"));
        result
    }

    #[test]
    fn single_rank_equals_sequential_quality() {
        let g = generators::grid2d(8, 8, WeightKind::Unit, 0);
        let result = check(&g, 3, 1);
        assert_eq!(result.report.total_messages(), 0);
        assert!(result.ordering.top_separator() <= 16);
    }

    #[test]
    fn mesh_on_4_ranks() {
        let g = generators::grid2d(10, 10, WeightKind::Unit, 0);
        let result = check(&g, 3, 4);
        assert!(result.report.total_messages() > 0);
        // separators stay small-ish on a mesh
        assert!(
            result.ordering.top_separator() <= 30,
            "top separator {}",
            result.ordering.top_separator()
        );
    }

    #[test]
    fn mesh_on_9_ranks_height_4() {
        let g = generators::grid2d(12, 12, WeightKind::Unit, 0);
        check(&g, 4, 9);
    }

    #[test]
    fn random_graph_on_7_ranks() {
        let g = generators::connected_gnp(80, 0.05, WeightKind::Unit, 5);
        check(&g, 3, 7);
    }

    #[test]
    fn more_ranks_than_vertices() {
        let g = generators::path(6, WeightKind::Unit, 0);
        check(&g, 2, 9);
    }

    #[test]
    fn disconnected_graph() {
        let mut b = apsp_graph::GraphBuilder::new(24);
        for c in 0..3 {
            for i in 0..7 {
                b.add_edge(8 * c + i, 8 * c + i + 1, 1.0);
            }
        }
        let g = b.build();
        check(&g, 3, 4);
    }

    #[test]
    fn ordering_feeds_the_solver() {
        // the distributed ordering must work end-to-end
        let g = generators::grid2d(9, 9, WeightKind::Integer { max: 5 }, 3);
        let result = check(&g, 3, 9);
        let layout = crate::SupernodalLayout::from_ordering(&result.ordering);
        let gp = g.permuted(&result.ordering.perm);
        let solved = crate::sparse2d::sparse2d(&layout, &gp, crate::R4Strategy::OneToOne);
        let dist =
            crate::SupernodalLayout::unpermute(&solved.dist_eliminated, &result.ordering.perm);
        let reference = apsp_graph::oracle::apsp_dijkstra(&g);
        assert!(dist.first_mismatch(&reference, 1e-9).is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generators::grid2d(8, 8, WeightKind::Unit, 0);
        let a = dist_nested_dissection(&g, 3, 4, 7);
        let b = dist_nested_dissection(&g, 3, 4, 7);
        assert_eq!(a.ordering.perm.as_order(), b.ordering.perm.as_order());
        assert_eq!(a.report.critical_latency(), b.report.critical_latency());
    }
}
