//! A stateful handle to a solved distributed APSP instance: query
//! distances and routes, apply incremental updates, and keep the
//! accumulated communication bill — the ergonomic layer a long-lived
//! service builds on (solve once, serve queries, absorb traffic updates).

use crate::sparse2d::{sparse2d_with, Sparse2dOptions};
use crate::supernodal::SupernodalLayout;
use crate::update::{apply_decreases, DecreasedEdge};
use apsp_graph::{Csr, DenseDist};
use apsp_minplus::MinPlusMatrix;
use apsp_partition::{nested_dissection, NdOptions, NdOrdering};
use apsp_simnet::RunReport;

/// A solved all-pairs instance living on the simulated machine's layout:
/// per-rank blocks in eliminated order plus the permutation back to input
/// vertex ids.
pub struct SolvedApsp {
    graph: Csr,
    ordering: NdOrdering,
    layout: SupernodalLayout,
    /// per-rank blocks, eliminated order
    blocks: Vec<MinPlusMatrix>,
    /// accumulated communication bill (solve + every update so far)
    report: RunReport,
}

impl SolvedApsp {
    /// Solves `g` on `p = (2^h − 1)²` simulated ranks and returns the
    /// stateful handle.
    pub fn solve(g: &Csr, height: u32) -> SolvedApsp {
        assert!(g.has_nonnegative_weights(), "undirected APSP requires non-negative weights");
        let nd = nested_dissection(g, height, &NdOptions::default());
        nd.validate(g).expect("ordering violates the separation invariant");
        let layout = SupernodalLayout::from_ordering(&nd);
        let gp = g.permuted(&nd.perm);
        let result = sparse2d_with(&layout, &gp, &Sparse2dOptions::default());
        let blocks = split_blocks(&layout, &result.dist_eliminated);
        SolvedApsp { graph: g.clone(), ordering: nd, layout, blocks, report: result.report }
    }

    /// Distance between two input-graph vertices (O(1) lookup).
    pub fn distance(&self, u: usize, v: usize) -> f64 {
        let (i, oi) = self.locate(u);
        let (j, oj) = self.locate(v);
        self.blocks[self.layout.rank_of_block(i, j)].get(oi, oj)
    }

    /// One shortest route between two input vertices, reconstructed from
    /// distances (`None` when unreachable).
    pub fn route(&self, u: usize, v: usize) -> Option<Vec<usize>> {
        apsp_graph::paths::reconstruct_path(&self.graph, &self.dense(), u, v, 1e-9)
    }

    /// Applies a batch of edge-weight **decreases** (input vertex ids).
    /// Each edge must already exist or be a new shortcut; the handle's
    /// graph and distance blocks are updated, and the update's measured
    /// communication is folded into [`SolvedApsp::report`].
    ///
    /// New shortcut edges may cross cousin supernodes — that is fine for
    /// the update path (explicit row/column broadcasts, no reliance on the
    /// elimination structure), but it means the *updated* graph may no
    /// longer be solvable from scratch with this ordering; a fresh
    /// [`SolvedApsp::solve`] would recompute a valid one.
    pub fn decrease_edges(&mut self, edges: &[(usize, usize, f64)]) {
        let batch: Vec<DecreasedEdge> = edges
            .iter()
            .map(|&(u, v, w)| DecreasedEdge {
                u: self.ordering.perm.to_new(u),
                v: self.ordering.perm.to_new(v),
                new_weight: w,
            })
            .collect();
        let result = apply_decreases(&self.layout, &self.blocks, &batch);
        self.blocks = split_blocks(&self.layout, &result.dist_eliminated);
        self.report.absorb(&result.report);
        // keep the stored graph in sync (builder keeps minima)
        let mut b = apsp_graph::GraphBuilder::new(self.graph.n());
        for (u, v, w) in self.graph.edges() {
            b.add_edge(u, v, w);
        }
        for &(u, v, w) in edges {
            b.add_edge(u, v, w);
        }
        self.graph = b.build();
    }

    /// The full dense distance matrix in input vertex ids (materializes —
    /// use [`SolvedApsp::distance`] for point queries).
    pub fn dense(&self) -> DenseDist {
        let eliminated = self.layout.assemble_dense(&self.blocks);
        SupernodalLayout::unpermute(&eliminated, &self.ordering.perm)
    }

    /// The accumulated communication bill (solve + updates).
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    /// The nested-dissection ordering in use.
    pub fn ordering(&self) -> &NdOrdering {
        &self.ordering
    }

    /// The current graph (including applied decreases).
    pub fn graph(&self) -> &Csr {
        &self.graph
    }

    fn locate(&self, u: usize) -> (usize, usize) {
        let new = self.ordering.perm.to_new(u);
        let k = self.ordering.supernode_of_new(new);
        (k, new - self.layout.offset(k))
    }

    /// Serializes the solved instance to a self-contained text snapshot
    /// (graph, ordering, distance blocks, accumulated bill) so a service
    /// can restart without re-solving.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> Result<(), String> {
        use std::fmt::Write as _;
        let mut s = String::from("sparse-apsp solved v1\n");
        let _ = writeln!(s, "height {}", self.layout.tree().height());
        let _ = writeln!(
            s,
            "sizes {}",
            (1..=self.layout.n_super())
                .map(|k| self.layout.size(k).to_string())
                .collect::<Vec<_>>()
                .join(" ")
        );
        let _ = writeln!(
            s,
            "order {}",
            self.ordering
                .perm
                .as_order()
                .iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join(" ")
        );
        // accumulated critical clocks (enough to restore the bill's shape)
        let r = &self.report;
        let _ = writeln!(
            s,
            "bill {} {} {} {} {} {}",
            r.critical_latency(),
            r.critical_bandwidth(),
            r.critical_compute(),
            r.total_messages(),
            r.total_words(),
            r.max_peak_words()
        );
        let _ = writeln!(s, "graph");
        s.push_str(&apsp_graph::io::to_edge_list(&self.graph));
        let _ = writeln!(s, "blocks");
        for block in &self.blocks {
            let row: Vec<String> = block
                .as_slice()
                .iter()
                .map(|&w| if w.is_infinite() { "inf".into() } else { format!("{w}") })
                .collect();
            let _ = writeln!(s, "{}", row.join(" "));
        }
        std::fs::write(path.as_ref(), s)
            .map_err(|e| format!("cannot write {}: {e}", path.as_ref().display()))
    }

    /// Restores a snapshot written by [`SolvedApsp::save`]. The restored
    /// handle serves queries and accepts updates; the restored bill keeps
    /// only aggregate clocks (attributed to rank 0).
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<SolvedApsp, String> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| format!("cannot read {}: {e}", path.as_ref().display()))?;
        let mut lines = text.lines();
        if lines.next() != Some("sparse-apsp solved v1") {
            return Err("not a sparse-apsp snapshot".into());
        }
        let parse_line = |line: Option<&str>, key: &str| -> Result<Vec<String>, String> {
            let line = line.ok_or_else(|| format!("missing {key} line"))?;
            let mut it = line.split_whitespace();
            if it.next() != Some(key) {
                return Err(format!("expected {key} line, got {line:?}"));
            }
            Ok(it.map(String::from).collect())
        };
        let height: u32 = parse_line(lines.next(), "height")?
            .first()
            .ok_or("missing height")?
            .parse()
            .map_err(|e| format!("{e}"))?;
        let sizes: Vec<usize> = parse_line(lines.next(), "sizes")?
            .iter()
            .map(|x| x.parse().map_err(|e| format!("{e}")))
            .collect::<Result<_, _>>()?;
        let order: Vec<usize> = parse_line(lines.next(), "order")?
            .iter()
            .map(|x| x.parse().map_err(|e| format!("{e}")))
            .collect::<Result<_, _>>()?;
        let bill: Vec<u64> = parse_line(lines.next(), "bill")?
            .iter()
            .map(|x| x.parse().map_err(|e| format!("{e}")))
            .collect::<Result<_, _>>()?;
        if bill.len() != 6 {
            return Err("bad bill line".into());
        }
        if lines.next() != Some("graph") {
            return Err("missing graph section".into());
        }
        let rest: Vec<&str> = lines.collect();
        let split = rest.iter().position(|&l| l == "blocks").ok_or("missing blocks section")?;
        let graph = apsp_graph::io::from_edge_list(&rest[..split].join("\n"))?;

        let tree = apsp_etree::SchedTree::new(height);
        if sizes.len() != tree.num_supernodes() {
            return Err("sizes do not match the tree".into());
        }
        let ordering = NdOrdering {
            tree,
            perm: apsp_graph::Permutation::from_order(order),
            supernode_sizes: sizes.clone(),
        };
        // NOTE: no cousin-separation validation here — applied *updates*
        // legitimately add shortcut edges across cousins (the update path
        // uses explicit broadcasts, not the elimination structure), so the
        // stored graph need not be ND-consistent. Structural checks only:
        if ordering.perm.len() != graph.n() || sizes.iter().sum::<usize>() != graph.n() {
            return Err("snapshot ordering does not match its graph".into());
        }
        let layout = SupernodalLayout::new(tree, sizes);

        let block_lines = &rest[split + 1..];
        if block_lines.len() != layout.p() {
            return Err(format!(
                "expected {} block lines, found {}",
                layout.p(),
                block_lines.len()
            ));
        }
        let mut blocks = Vec::with_capacity(layout.p());
        for (rank, line) in block_lines.iter().enumerate() {
            let (i, j) = layout.block_of_rank(rank);
            let want = layout.block_words(i, j);
            let vals: Vec<f64> = line
                .split_whitespace()
                .map(|x| {
                    if x == "inf" {
                        Ok(f64::INFINITY)
                    } else {
                        x.parse().map_err(|e| format!("{e}"))
                    }
                })
                .collect::<Result<_, String>>()?;
            if vals.len() != want {
                return Err(format!("block {rank}: expected {want} words, found {}", vals.len()));
            }
            blocks.push(MinPlusMatrix::from_raw(layout.size(i), layout.size(j), vals));
        }

        // reconstruct an aggregate bill on rank 0
        let mut report =
            RunReport { per_rank: vec![Default::default(); layout.p()], profile: None };
        report.per_rank[0].clocks.latency = bill[0]; // audit:allow(ledger-mutation)
        report.per_rank[0].clocks.bandwidth = bill[1]; // audit:allow(ledger-mutation)
        report.per_rank[0].clocks.compute = bill[2]; // audit:allow(ledger-mutation)
        report.per_rank[0].sent_messages = bill[3];
        report.per_rank[0].sent_words = bill[4];
        report.per_rank[0].peak_words = bill[5];

        Ok(SolvedApsp { graph, ordering, layout, blocks, report })
    }
}

/// Cuts a dense eliminated-order matrix back into per-rank blocks.
fn split_blocks(layout: &SupernodalLayout, dense: &DenseDist) -> Vec<MinPlusMatrix> {
    (0..layout.p())
        .map(|rank| {
            let (i, j) = layout.block_of_rank(rank);
            let (ri, rj) = (layout.range(i), layout.range(j));
            MinPlusMatrix::from_fn(ri.len(), rj.len(), |r, c| dense.get(ri.start + r, rj.start + c))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::generators::{self, WeightKind};
    use apsp_graph::oracle;

    #[test]
    fn solve_query_route() {
        let g = generators::grid2d(8, 8, WeightKind::Integer { max: 5 }, 2);
        let solved = SolvedApsp::solve(&g, 3);
        let reference = oracle::apsp_dijkstra(&g);
        for (u, v) in [(0, 63), (5, 40), (7, 7)] {
            assert!((solved.distance(u, v) - reference.get(u, v)).abs() < 1e-9);
        }
        let route = solved.route(0, 63).unwrap();
        assert_eq!(route.first(), Some(&0));
        assert_eq!(route.last(), Some(&63));
        let w = apsp_graph::paths::path_weight(&g, &route).unwrap();
        assert!((w - reference.get(0, 63)).abs() < 1e-9);
        assert!(solved.report().critical_latency() > 0);
    }

    #[test]
    fn updates_keep_the_handle_consistent() {
        let g = generators::grid2d(6, 6, WeightKind::Integer { max: 9 }, 4);
        let mut solved = SolvedApsp::solve(&g, 2);
        let before = solved.distance(0, 35);
        let bill_before = solved.report().total_words();
        solved.decrease_edges(&[(0, 35, 1.5)]);
        assert!((solved.distance(0, 35) - 1.5).abs() < 1e-9);
        assert!(solved.distance(0, 35) < before);
        assert!(solved.report().total_words() > bill_before, "update cost accumulated");
        // full matrix agrees with a fresh oracle on the updated graph
        let reference = oracle::apsp_dijkstra(solved.graph());
        assert!(solved.dense().first_mismatch(&reference, 1e-9).is_none());
        // a second batch compounds correctly
        solved.decrease_edges(&[(5, 30, 0.5), (12, 24, 0.25)]);
        let reference = oracle::apsp_dijkstra(solved.graph());
        assert!(solved.dense().first_mismatch(&reference, 1e-9).is_none());
    }

    #[test]
    fn save_load_roundtrip() {
        let g = generators::grid2d(6, 6, WeightKind::Integer { max: 7 }, 8);
        let mut solved = SolvedApsp::solve(&g, 2);
        solved.decrease_edges(&[(0, 35, 2.0)]);
        let path = std::env::temp_dir().join(format!("apsp-snap-{}.txt", std::process::id()));
        solved.save(&path).unwrap();
        let restored = SolvedApsp::load(&path).unwrap();
        // identical distances (incl. the applied update)
        assert!(solved.dense().first_mismatch(&restored.dense(), 0.0).is_none());
        assert_eq!(restored.distance(0, 35), 2.0);
        // bill aggregates survive
        assert_eq!(restored.report().critical_latency(), solved.report().critical_latency());
        assert_eq!(restored.report().total_words(), solved.report().total_words());
        // the restored handle keeps working: another update + oracle check
        let mut restored = restored;
        restored.decrease_edges(&[(5, 30, 0.5)]);
        let reference = oracle::apsp_dijkstra(restored.graph());
        assert!(restored.dense().first_mismatch(&reference, 1e-9).is_none());
    }

    #[test]
    fn load_rejects_garbage() {
        let path = std::env::temp_dir().join(format!("apsp-garbage-{}.txt", std::process::id()));
        std::fs::write(&path, "not a snapshot").unwrap();
        assert!(SolvedApsp::load(&path).is_err());
        assert!(SolvedApsp::load("/nonexistent/really").is_err());
    }

    #[test]
    fn disconnected_queries_are_infinite() {
        let mut b = apsp_graph::GraphBuilder::new(8);
        b.add_edge(0, 1, 1.0);
        b.add_edge(6, 7, 1.0);
        let g = b.build();
        let solved = SolvedApsp::solve(&g, 2);
        assert!(solved.distance(0, 7).is_infinite());
        assert!(solved.route(0, 7).is_none());
        assert_eq!(solved.distance(6, 7), 1.0);
    }
}
