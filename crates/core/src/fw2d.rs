//! Dense distributed blocked Floyd–Warshall on a block layout
//! (Jenq–Sahni style, §2 of the paper) — the simple dense baseline.
//!
//! The `√p × √p` grid stores an `n × n` dense matrix in block layout; the
//! `√p` pivot iterations each broadcast the closed pivot block and the two
//! panels, so the costs are `L = Θ(√p · log p)` and `B = Θ(n²/√p · log p)`
//! — the dense-regime shape every row of Table 2 compares against.

use apsp_graph::{Csr, DenseDist};
use apsp_minplus::{fw_in_place, gemm, MinPlusMatrix};
use apsp_simnet::{
    FaultPlan, FaultSummary, Launch, Machine, MachineError, RecoveryPolicy, RecoveryReport,
    RunReport,
};
use apsp_transport::{NativeMachine, Transport};

/// Balanced partition of `n` into `parts` consecutive chunks.
pub fn balanced_sizes(n: usize, parts: usize) -> Vec<usize> {
    let q = n / parts;
    let r = n % parts;
    (0..parts).map(|i| q + usize::from(i < r)).collect()
}

/// Result of a dense distributed APSP run.
pub struct Fw2dResult {
    /// All-pairs distances (input vertex ids — no reordering happens here).
    pub dist: DenseDist,
    /// Measured communication report.
    pub report: RunReport,
}

struct Grid {
    n_grid: usize,
    sizes: Vec<usize>,
    offsets: Vec<usize>,
}

impl Grid {
    fn new(n: usize, n_grid: usize) -> Self {
        let sizes = balanced_sizes(n, n_grid);
        let mut offsets = vec![0];
        let mut acc = 0;
        for &s in &sizes {
            acc += s;
            offsets.push(acc);
        }
        Grid { n_grid, sizes, offsets }
    }

    fn rank_of(&self, i: usize, j: usize) -> usize {
        (i - 1) * self.n_grid + (j - 1)
    }

    fn block_of(&self, rank: usize) -> (usize, usize) {
        (rank / self.n_grid + 1, rank % self.n_grid + 1)
    }

    fn size(&self, k: usize) -> usize {
        self.sizes[k - 1]
    }

    fn range(&self, k: usize) -> std::ops::Range<usize> {
        self.offsets[k - 1]..self.offsets[k]
    }

    fn extract(&self, g: &Csr, i: usize, j: usize) -> MinPlusMatrix {
        let (ri, rj) = (self.range(i), self.range(j));
        let mut block = MinPlusMatrix::empty(ri.len(), rj.len());
        if i == j {
            for d in 0..ri.len() {
                block.set(d, d, 0.0);
            }
        }
        for (bi, u) in ri.clone().enumerate() {
            for (v, w) in g.edges_of(u) {
                if rj.contains(&v) {
                    block.relax(bi, v - rj.start, w);
                }
            }
        }
        block
    }
}

fn tag(t: usize, phase: u64, aux: usize) -> u64 {
    0xF_0000_0000_0000 | ((t as u64) << 32) | (phase << 24) | aux as u64
}

fn rank_program<C: Transport>(comm: &mut C, grid: &Grid, g: &Csr) -> Vec<f64> {
    let n_grid = grid.n_grid;
    let (bi, bj) = grid.block_of(comm.rank());
    let mut block = grid.extract(g, bi, bj);
    comm.alloc(block.words());

    let full_col: Vec<usize> = (1..=n_grid).map(|i| grid.rank_of(i, bj)).collect();
    let full_row: Vec<usize> = (1..=n_grid).map(|j| grid.rank_of(bi, j)).collect();

    for t in 1..=n_grid {
        // each pivot round is a checkpointable phase: skipped wholesale
        // when a restored checkpoint already covers it
        if comm.phase_live() {
            pivot_round(comm, grid, &mut block, t, bi, bj, &full_col, &full_row);
        }
        let (rows, cols) = (block.rows(), block.cols());
        let state =
            comm.commit_phase(std::mem::replace(&mut block, MinPlusMatrix::empty(0, 0)).into_vec());
        block = MinPlusMatrix::from_raw(rows, cols, state);
    }

    block.into_vec()
}

#[allow(clippy::too_many_arguments)]
fn pivot_round<C: Transport>(
    comm: &mut C,
    grid: &Grid,
    block: &mut MinPlusMatrix,
    t: usize,
    bi: usize,
    bj: usize,
    full_col: &[usize],
    full_row: &[usize],
) {
    {
        let mut pivot_span = comm.span("pivot", t as u64);
        let comm: &mut C = &mut pivot_span;
        // pivot closure
        if bi == t && bj == t {
            let ops = fw_in_place(block);
            comm.compute(ops);
        }
        // pivot broadcast down column t
        let mut akk: Option<MinPlusMatrix> = None;
        if bj == t {
            let payload = (bi == t).then(|| block.as_slice().to_vec());
            let data = comm.bcast(full_col, grid.rank_of(t, t), tag(t, 1, 0), payload);
            comm.alloc(data.len());
            let pivot = MinPlusMatrix::from_raw(grid.size(t), grid.size(t), data);
            if bi != t {
                // column panel update: A(i,t) ⊕= A(i,t) ⊗ A(t,t)*
                let snapshot = block.clone();
                let ops = gemm(block, &snapshot, &pivot);
                comm.compute(ops);
            }
            akk = Some(pivot);
        }
        // pivot broadcast along row t
        if bi == t {
            let payload = (bj == t).then(|| block.as_slice().to_vec());
            let data = comm.bcast(full_row, grid.rank_of(t, t), tag(t, 2, 0), payload);
            if bj != t {
                comm.alloc(data.len());
                let akk_row = MinPlusMatrix::from_raw(grid.size(t), grid.size(t), data);
                // row panel update: A(t,j) ⊕= A(t,t)* ⊗ A(t,j)
                let snapshot = block.clone();
                let ops = gemm(block, &akk_row, &snapshot);
                comm.compute(ops);
                comm.release(akk_row.words());
            }
        }
        if let Some(a) = akk.take() {
            comm.release(a.words());
        }

        // column panel A(i,t) broadcasts along row i (all rows in parallel)
        let aik = {
            let payload = (bj == t).then(|| block.as_slice().to_vec());
            let data = comm.bcast(full_row, grid.rank_of(bi, t), tag(t, 3, bi), payload);
            comm.alloc(data.len());
            MinPlusMatrix::from_raw(grid.size(bi), grid.size(t), data)
        };
        // row panel A(t,j) broadcasts down column j
        let akj = {
            let payload = (bi == t).then(|| block.as_slice().to_vec());
            let data = comm.bcast(full_col, grid.rank_of(t, bj), tag(t, 4, bj), payload);
            comm.alloc(data.len());
            MinPlusMatrix::from_raw(grid.size(t), grid.size(bj), data)
        };
        // min-plus outer product everywhere off the pivot cross
        if bi != t && bj != t {
            let ops = gemm(block, &aik, &akj);
            comm.compute(ops);
        }
        comm.release(aik.words());
        comm.release(akj.words());
    }
}

/// Runs the dense blocked-FW APSP on a `n_grid × n_grid` simulated grid
/// (`p = n_grid²` ranks).
pub fn fw2d(g: &Csr, n_grid: usize) -> Fw2dResult {
    fw2d_inner(g, n_grid, Launch::Plain)
}

/// Like [`fw2d`], but the run is profiled: `report.profile` carries the
/// per-pivot span ledger (span `pivot#t` per iteration, with the panel
/// broadcasts nested inside) and the p×p communication matrix.
pub fn fw2d_profiled(g: &Csr, n_grid: usize) -> Fw2dResult {
    fw2d_inner(g, n_grid, Launch::Profiled)
}

/// Like [`fw2d`], on the native shared-memory backend: the identical rank
/// program runs on `p = n_grid²` OS threads over real channels. Distances
/// are bit-identical to the simulator's; the report carries no costs (the
/// native machine has no §3.1 clocks).
pub fn fw2d_native(g: &Csr, n_grid: usize) -> Fw2dResult {
    let _wall = apsp_metrics::time_phase("solve-fw2d-native");
    assert!(n_grid >= 1);
    let grid = Grid::new(g.n(), n_grid);
    let p = n_grid * n_grid;
    let (blocks_raw, report) = NativeMachine::run(p, |comm| rank_program(comm, &grid, g));
    assemble(g, &grid, blocks_raw, report)
}

/// Verifies the fw2d communication schedule on an `n_grid × n_grid` grid:
/// records every rank's comm script for the static lint (layer 1) and,
/// for `p ≤` [`apsp_verify::MAX_EXPLORE_P`], explores wildcard delivery
/// schedules (layer 2). Recording never touches the §3.1 cost clocks, so
/// a verified schedule's plain run is byte-identical to an unverified one.
pub fn fw2d_verify(
    g: &Csr,
    n_grid: usize,
    opts: &apsp_verify::VerifyOptions,
) -> apsp_verify::VerifyReport {
    assert!(n_grid >= 1);
    let grid = Grid::new(g.n(), n_grid);
    let p = n_grid * n_grid;
    apsp_verify::verify_program(
        p,
        opts,
        |comm| rank_program(comm, &grid, g),
        apsp_verify::digest_rows,
    )
}

/// Native-backend variant of [`fw2d_verify`]: the identical rank program
/// records the same logical comm script over real OS threads and the
/// layer-1 static lint checks it (the layer-2 explorer needs the
/// governed simulator; see `docs/VERIFICATION.md`).
pub fn fw2d_native_verify(g: &Csr, n_grid: usize) -> apsp_verify::VerifyReport {
    assert!(n_grid >= 1);
    let grid = Grid::new(g.n(), n_grid);
    let p = n_grid * n_grid;
    apsp_verify::lint_recorded_outcome(
        p,
        NativeMachine::run_recorded(p, |comm| rank_program(comm, &grid, g)),
    )
}

/// Like [`fw2d`], additionally returning every rank's recorded comm
/// script — the cost-model auditor's sampling hook (`apsp audit`):
/// [`apsp_simnet::phase_totals`] reduces the scripts to per-phase
/// (`pivot`) ledgers fitted against the §2 dense bounds. Recording never
/// touches the §3.1 clocks, so the embedded report is byte-identical to
/// a plain run's.
pub fn fw2d_recorded(g: &Csr, n_grid: usize) -> (Fw2dResult, Vec<Vec<apsp_simnet::CommEvent>>) {
    assert!(n_grid >= 1);
    let grid = Grid::new(g.n(), n_grid);
    let p = n_grid * n_grid;
    let (blocks_raw, report, scripts) =
        Machine::run_recorded(p, |comm| rank_program(comm, &grid, g))
            .expect("fault-free recorded launch cannot fail");
    (assemble(g, &grid, blocks_raw, report), scripts)
}

/// Like [`fw2d`], under a deterministic fault plan: the run recovers (or
/// fails loudly with a [`MachineError`]) and reports its fault history.
pub fn fw2d_faulty(
    g: &Csr,
    n_grid: usize,
    plan: &FaultPlan,
    profiled: bool,
) -> Result<(Fw2dResult, FaultSummary), MachineError> {
    let how = if profiled { Launch::Profiled } else { Launch::Plain };
    fw2d_launch(g, n_grid, how.with_faults(plan))
        .map(|(res, faults)| (res, faults.expect("faulty run carries a summary")))
}

/// Like [`fw2d_faulty`], under a checkpoint/restart supervisor: each
/// pivot round is a phase boundary, so a dead rank or exhausted retry
/// budget rolls back to the previous round and re-executes (with a spare
/// rank when the plan's kill is permanent) instead of failing the solve.
pub fn fw2d_recovering(
    g: &Csr,
    n_grid: usize,
    plan: &FaultPlan,
    policy: RecoveryPolicy,
    profiled: bool,
) -> Result<(Fw2dResult, FaultSummary, RecoveryReport), MachineError> {
    assert!(n_grid >= 1);
    let grid = Grid::new(g.n(), n_grid);
    let p = n_grid * n_grid;
    let (blocks_raw, report, summary, recovery) =
        Machine::launch_recovering(p, plan, policy, profiled, |comm| rank_program(comm, &grid, g))?;
    Ok((assemble(g, &grid, blocks_raw, report), summary, recovery))
}

/// [`fw2d_faulty`] on the **native** backend: the same seeded plan over
/// real channel traffic, with `kill=` rules killing actual rank threads.
/// Recovered runs are bit-identical to [`fw2d_native`].
pub fn fw2d_native_faulty(
    g: &Csr,
    n_grid: usize,
    plan: &FaultPlan,
) -> Result<(Fw2dResult, FaultSummary), MachineError> {
    let _wall = apsp_metrics::time_phase("solve-fw2d-native");
    assert!(n_grid >= 1);
    let grid = Grid::new(g.n(), n_grid);
    let p = n_grid * n_grid;
    let (blocks_raw, report, faults) =
        NativeMachine::launch_faulty(p, plan, |comm| rank_program(comm, &grid, g))?;
    Ok((assemble(g, &grid, blocks_raw, report), faults))
}

/// [`fw2d_recovering`] on the **native** backend: per-pivot checkpoints,
/// thread-level kill and respawn, spare-thread takeover for permanently
/// dead ranks.
pub fn fw2d_native_recovering(
    g: &Csr,
    n_grid: usize,
    plan: &FaultPlan,
    policy: RecoveryPolicy,
) -> Result<(Fw2dResult, FaultSummary, RecoveryReport), MachineError> {
    let _wall = apsp_metrics::time_phase("solve-fw2d-native");
    assert!(n_grid >= 1);
    let grid = Grid::new(g.n(), n_grid);
    let p = n_grid * n_grid;
    let (blocks_raw, report, summary, recovery) =
        NativeMachine::launch_recovering(p, plan, policy, |comm| rank_program(comm, &grid, g))?;
    Ok((assemble(g, &grid, blocks_raw, report), summary, recovery))
}

fn fw2d_inner(g: &Csr, n_grid: usize, how: Launch<'_>) -> Fw2dResult {
    fw2d_launch(g, n_grid, how).expect("fault-free launch cannot fail").0
}

fn fw2d_launch(
    g: &Csr,
    n_grid: usize,
    how: Launch<'_>,
) -> Result<(Fw2dResult, Option<FaultSummary>), MachineError> {
    let _wall = apsp_metrics::time_phase("solve-fw2d");
    assert!(n_grid >= 1);
    let grid = Grid::new(g.n(), n_grid);
    let p = n_grid * n_grid;
    let (blocks_raw, report, faults) =
        Machine::launch(p, how, |comm| rank_program(comm, &grid, g))?;
    Ok((assemble(g, &grid, blocks_raw, report), faults))
}

fn assemble(g: &Csr, grid: &Grid, blocks_raw: Vec<Vec<f64>>, report: RunReport) -> Fw2dResult {
    let n = g.n();
    let mut dist = DenseDist::unconnected(n);
    for (rank, data) in blocks_raw.into_iter().enumerate() {
        let (i, j) = grid.block_of(rank);
        let (ri, rj) = (grid.range(i), grid.range(j));
        let block = MinPlusMatrix::from_raw(ri.len(), rj.len(), data);
        for r in 0..block.rows() {
            for c in 0..block.cols() {
                dist.set(ri.start + r, rj.start + c, block.get(r, c));
            }
        }
    }
    Fw2dResult { dist, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::generators::{self, WeightKind};
    use apsp_graph::oracle;

    fn check(g: &Csr, n_grid: usize) -> RunReport {
        let result = fw2d(g, n_grid);
        let reference = oracle::apsp_dijkstra(g);
        if let Some((i, j, a, b)) = result.dist.first_mismatch(&reference, 1e-9) {
            panic!("mismatch at ({i},{j}): got {a}, expected {b}");
        }
        result.report
    }

    #[test]
    fn balanced_sizes_cover() {
        assert_eq!(balanced_sizes(10, 3), vec![4, 3, 3]);
        assert_eq!(balanced_sizes(9, 3), vec![3, 3, 3]);
        assert_eq!(balanced_sizes(2, 3), vec![1, 1, 0]);
    }

    #[test]
    fn grid_graph_on_9_ranks() {
        let g = generators::grid2d(5, 5, WeightKind::Integer { max: 6 }, 1);
        check(&g, 3);
    }

    #[test]
    fn random_graph_on_49_ranks() {
        let g = generators::connected_gnp(40, 0.08, WeightKind::Uniform { lo: 0.5, hi: 2.0 }, 2);
        check(&g, 7);
    }

    #[test]
    fn disconnected_on_4_ranks() {
        let mut b = apsp_graph::GraphBuilder::new(10);
        for i in 0..4 {
            b.add_edge(i, i + 1, 1.0);
        }
        b.add_edge(6, 7, 1.0);
        let g = b.build();
        check(&g, 2);
    }

    #[test]
    fn single_rank() {
        let g = generators::cycle(8, WeightKind::Unit, 0);
        let report = check(&g, 1);
        assert_eq!(report.total_messages(), 0);
    }

    #[test]
    fn latency_scales_with_grid_side() {
        let g = generators::grid2d(8, 8, WeightKind::Unit, 0);
        let l3 = check(&g, 3).critical_latency();
        let l7 = check(&g, 7).critical_latency();
        assert!(l7 > l3, "L(√p=7)={l7} should exceed L(√p=3)={l3}");
    }
}
