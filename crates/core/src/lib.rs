#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! # apsp-core
//!
//! The paper's algorithms and baselines:
//!
//! * [`supernodal`] — the supernodal block matrix: the nested-dissection
//!   ordering applied to a graph, cut into the `N × N` block grid the
//!   scheduling tree describes (Fig. 1d / Fig. 3);
//! * [`superfw`] — shared-memory supernodal Floyd–Warshall (SuperFW \[22\],
//!   §4) with exact operation counts;
//! * [`sparse2d`] — **2D-SPARSE-APSP (Algorithm 1)**: the communication-
//!   avoiding distributed algorithm, phases `R¹…R⁴` per level, with the
//!   Corollary 5.5 one-to-one unit placement (plus the §5.2.2 "sequential
//!   units" strategy as an ablation);
//! * [`fw2d`] — dense distributed blocked Floyd–Warshall on a block layout
//!   (Jenq–Sahni style, §2), a dense baseline;
//! * [`dcapsp`] — divide-and-conquer APSP over a block-cyclic layout with
//!   SUMMA min-plus multiplies (2D-DC-APSP \[24\] shape), the paper's
//!   comparator;
//! * [`driver`] — the end-to-end public API: partition → distribute → run →
//!   gather → verify, returning distances plus the measured cost report;
//! * [`bounds`] — closed-form §5.4 predictions and §6 lower bounds for
//!   overlaying measured numbers.

pub mod bounds;
pub mod dcapsp;
pub mod djohnson;
pub mod dnd;
pub mod driver;
pub mod fw2d;
pub mod solved;
pub mod sparse2d;
pub mod superfw;
pub mod supernodal;
pub mod update;

pub use driver::{ApspRun, Backend, SparseApsp, SparseApspConfig};
pub use solved::SolvedApsp;
pub use sparse2d::R4Strategy;
pub use supernodal::SupernodalLayout;
