//! Distributed Johnson-style APSP: replicate the graph, partition the
//! sources — the "embarrassingly parallel" baseline the paper's related
//! work dismisses for scalability ("due to the data-dependent structure,
//! it is difficult to scalably parallelize", §2).
//!
//! We implement it anyway, honestly: rank 0 broadcasts the CSR arrays
//! (`O((n + m)·log p)` words), every rank runs Dijkstra from its `n/p`
//! sources, and each rank *keeps* its row block (no gather — like the
//! other algorithms, results stay distributed). Measured profile:
//!
//! * bandwidth `O((n + m)·log p)` — tiny for sparse graphs;
//! * latency `O(log p)`;
//! * **compute** `O(n·(m + n log n)/p)` per rank, but data-dependent and
//!   heap-bound — the semiring structure the paper's algorithms exploit
//!   (blocked min-plus products) is lost, along with any possibility of
//!   communication-avoiding *updates* (dynamic graphs, batched queries).
//!
//! Having this baseline keeps the reproduction honest about regimes: for a
//! one-shot APSP on a very sparse graph, source-parallel Dijkstra wins on
//! volume; the paper's contribution is the latency-optimal FW-structured
//! computation (see EXPERIMENTS.md E15).

use crate::fw2d::balanced_sizes;
use apsp_graph::{oracle, Csr, DenseDist};
use apsp_simnet::{FaultError, FaultPlan, FaultSummary, Launch, Machine, RunReport};

/// Result of a [`distributed_johnson`] run.
pub struct DJohnsonResult {
    /// All-pairs distances (input vertex ids).
    pub dist: DenseDist,
    /// Measured communication report (broadcast only — Dijkstra compute is
    /// charged to the compute clock).
    pub report: RunReport,
}

/// Serializes a CSR into one word vector: `[n, m2, xadj…, adj…, w…]`.
fn pack_graph(g: &Csr) -> Vec<f64> {
    let n = g.n();
    let mut out = Vec::with_capacity(2 + n + 1 + 4 * g.m());
    out.push(n as f64);
    out.push((2 * g.m()) as f64);
    for u in 0..=n {
        out.push(if u == 0 {
            0.0
        } else {
            g.neighbors(u - 1).len() as f64 // lengths; prefix-summed below
        });
    }
    for u in 0..n {
        for (v, _) in g.edges_of(u) {
            out.push(v as f64);
        }
    }
    for u in 0..n {
        for (_, w) in g.edges_of(u) {
            out.push(w);
        }
    }
    out
}

/// Inverse of [`pack_graph`].
fn unpack_graph(data: &[f64]) -> Csr {
    let n = data[0] as usize;
    let m2 = data[1] as usize;
    let mut xadj = Vec::with_capacity(n + 1);
    let mut acc = 0usize;
    for i in 0..=n {
        acc += data[2 + i] as usize;
        xadj.push(acc);
    }
    let adj: Vec<u32> = data[3 + n..3 + n + m2].iter().map(|&x| x as u32).collect();
    let w: Vec<f64> = data[3 + n + m2..3 + n + 2 * m2].to_vec();
    Csr::from_raw(xadj, adj, w)
}

/// Runs the replicated-graph, source-partitioned Johnson/Dijkstra APSP on
/// `p` simulated ranks.
pub fn distributed_johnson(g: &Csr, p: usize) -> DJohnsonResult {
    djohnson_launch(g, p, Launch::Plain).expect("fault-free launch cannot fail").0
}

/// Like [`distributed_johnson`], under a deterministic fault plan: the
/// replication broadcast recovers (or fails loudly with a [`FaultError`])
/// and the run reports its fault history.
pub fn distributed_johnson_faulty(
    g: &Csr,
    p: usize,
    plan: &FaultPlan,
    profiled: bool,
) -> Result<(DJohnsonResult, FaultSummary), FaultError> {
    let how = if profiled { Launch::Profiled } else { Launch::Plain };
    djohnson_launch(g, p, how.with_faults(plan))
        .map(|(res, faults)| (res, faults.expect("faulty run carries a summary")))
}

fn djohnson_launch(
    g: &Csr,
    p: usize,
    how: Launch<'_>,
) -> Result<(DJohnsonResult, Option<FaultSummary>), FaultError> {
    assert!(g.has_nonnegative_weights(), "undirected APSP requires non-negative weights");
    let n = g.n();
    let sizes = balanced_sizes(n, p);
    let mut offsets = vec![0usize];
    for &s in &sizes {
        offsets.push(offsets.last().unwrap() + s);
    }
    let packed = pack_graph(g);
    let group: Vec<usize> = (0..p).collect();
    let (rows, report, faults) = Machine::launch(p, how, |comm| {
        // graph replication (rank 0 holds the input)
        let payload = (comm.rank() == 0).then(|| packed.clone());
        let data = comm.bcast(&group, 0, 0x10, payload);
        comm.alloc(data.len());
        let local = unpack_graph(&data);
        // my source range
        let r = comm.rank();
        let my_sources = offsets[r]..offsets[r + 1];
        let mut out = Vec::with_capacity(my_sources.len() * n);
        let mut ops = 0u64;
        for s in my_sources {
            let row = oracle::dijkstra(&local, s);
            // charge ~ (m + n)·log n heap operations' scalar work
            ops +=
                (local.m() as u64 * 2 + n as u64) * (usize::BITS - n.max(2).leading_zeros()) as u64;
            out.extend_from_slice(&row);
        }
        comm.compute(ops);
        comm.alloc(out.len());
        out
    })?;
    // assemble (host-side, mirroring the other algorithms' result handling)
    let mut dist = DenseDist::unconnected(n);
    for (r, block) in rows.into_iter().enumerate() {
        for (k, chunk) in block.chunks_exact(n.max(1)).enumerate() {
            let s = offsets[r] + k;
            for (t, &d) in chunk.iter().enumerate() {
                dist.set(s, t, d);
            }
        }
    }
    Ok((DJohnsonResult { dist, report }, faults))
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::generators::{self, WeightKind};

    #[test]
    fn pack_unpack_roundtrip() {
        let g = generators::grid2d(4, 5, WeightKind::Integer { max: 7 }, 1);
        let packed = pack_graph(&g);
        let h = unpack_graph(&packed);
        assert_eq!(g, h);
    }

    #[test]
    fn matches_oracle_on_meshes() {
        let g = generators::grid2d(7, 7, WeightKind::Uniform { lo: 0.2, hi: 2.0 }, 3);
        let result = distributed_johnson(&g, 9);
        let reference = oracle::apsp_dijkstra(&g);
        assert!(result.dist.first_mismatch(&reference, 1e-9).is_none());
        // replication: total volume ≈ (graph words)·(something ≤ p)
        assert!(result.report.total_words() > 0);
    }

    #[test]
    fn handles_more_ranks_than_sources() {
        let g = generators::path(5, WeightKind::Unit, 0);
        let result = distributed_johnson(&g, 9);
        let reference = oracle::apsp_dijkstra(&g);
        assert!(result.dist.first_mismatch(&reference, 1e-9).is_none());
    }

    #[test]
    fn disconnected_graph() {
        let mut b = apsp_graph::GraphBuilder::new(10);
        b.add_edge(0, 1, 1.0);
        b.add_edge(8, 9, 4.0);
        let g = b.build();
        let result = distributed_johnson(&g, 4);
        let reference = oracle::apsp_dijkstra(&g);
        assert!(result.dist.first_mismatch(&reference, 1e-9).is_none());
    }

    #[test]
    fn latency_is_logarithmic() {
        let g = generators::grid2d(8, 8, WeightKind::Unit, 0);
        let r9 = distributed_johnson(&g, 9).report;
        let r49 = distributed_johnson(&g, 49).report;
        // one broadcast: L = ceil(log2 p)
        assert_eq!(r9.critical_latency(), 4);
        assert_eq!(r49.critical_latency(), 6);
    }
}
