//! Distributed Johnson-style APSP: replicate the graph, partition the
//! sources — the "embarrassingly parallel" baseline the paper's related
//! work dismisses for scalability ("due to the data-dependent structure,
//! it is difficult to scalably parallelize", §2).
//!
//! We implement it anyway, honestly: rank 0 broadcasts the CSR arrays
//! (`O((n + m)·log p)` words), every rank runs Dijkstra from its `n/p`
//! sources, and each rank *keeps* its row block (no gather — like the
//! other algorithms, results stay distributed). Measured profile:
//!
//! * bandwidth `O((n + m)·log p)` — tiny for sparse graphs;
//! * latency `O(log p)`;
//! * **compute** `O(n·(m + n log n)/p)` per rank, but data-dependent and
//!   heap-bound — the semiring structure the paper's algorithms exploit
//!   (blocked min-plus products) is lost, along with any possibility of
//!   communication-avoiding *updates* (dynamic graphs, batched queries).
//!
//! Having this baseline keeps the reproduction honest about regimes: for a
//! one-shot APSP on a very sparse graph, source-parallel Dijkstra wins on
//! volume; the paper's contribution is the latency-optimal FW-structured
//! computation (see EXPERIMENTS.md E15).

use crate::fw2d::balanced_sizes;
use apsp_graph::{oracle, Csr, DenseDist};
use apsp_simnet::{
    FaultPlan, FaultSummary, Launch, Machine, MachineError, RecoveryPolicy, RecoveryReport,
    RunReport,
};
use apsp_transport::{NativeMachine, Transport};

/// Result of a [`distributed_johnson`] run.
pub struct DJohnsonResult {
    /// All-pairs distances (input vertex ids).
    pub dist: DenseDist,
    /// Measured communication report (broadcast only — Dijkstra compute is
    /// charged to the compute clock).
    pub report: RunReport,
}

/// Serializes a CSR into one word vector: `[n, m2, xadj…, adj…, w…]`.
fn pack_graph(g: &Csr) -> Vec<f64> {
    let n = g.n();
    let mut out = Vec::with_capacity(2 + n + 1 + 4 * g.m());
    out.push(n as f64);
    out.push((2 * g.m()) as f64);
    for u in 0..=n {
        out.push(if u == 0 {
            0.0
        } else {
            g.neighbors(u - 1).len() as f64 // lengths; prefix-summed below
        });
    }
    for u in 0..n {
        for (v, _) in g.edges_of(u) {
            out.push(v as f64);
        }
    }
    for u in 0..n {
        for (_, w) in g.edges_of(u) {
            out.push(w);
        }
    }
    out
}

/// Inverse of [`pack_graph`].
fn unpack_graph(data: &[f64]) -> Csr {
    let n = data[0] as usize;
    let m2 = data[1] as usize;
    let mut xadj = Vec::with_capacity(n + 1);
    let mut acc = 0usize;
    for i in 0..=n {
        acc += data[2 + i] as usize;
        xadj.push(acc);
    }
    let adj: Vec<u32> = data[3 + n..3 + n + m2].iter().map(|&x| x as u32).collect();
    let w: Vec<f64> = data[3 + n + m2..3 + n + 2 * m2].to_vec();
    Csr::from_raw(xadj, adj, w)
}

/// Runs the replicated-graph, source-partitioned Johnson/Dijkstra APSP on
/// `p` simulated ranks.
pub fn distributed_johnson(g: &Csr, p: usize) -> DJohnsonResult {
    djohnson_launch(g, p, Launch::Plain).expect("fault-free launch cannot fail").0
}

/// Like [`distributed_johnson`], on the native shared-memory backend: the
/// identical rank program runs on `p` OS threads over real channels.
/// Distances are bit-identical to the simulator's; the report carries no
/// costs (the native machine has no §3.1 clocks).
pub fn distributed_johnson_native(g: &Csr, p: usize) -> DJohnsonResult {
    let _wall = apsp_metrics::time_phase("solve-djohnson-native");
    let (n, offsets, packed, group) = setup(g, p);
    let (rows, report) =
        NativeMachine::run(p, |comm| rank_program(comm, &packed, &group, &offsets, n));
    assemble(n, &offsets, rows, report)
}

/// Verifies the distributed-Johnson communication schedule (replication
/// broadcast + per-phase commits) on `p` ranks: comm scripts are recorded
/// for the static lint and wildcard delivery schedules explored for
/// `p ≤` [`apsp_verify::MAX_EXPLORE_P`]. The digest covers every rank's
/// distance rows.
pub fn distributed_johnson_verify(
    g: &Csr,
    p: usize,
    opts: &apsp_verify::VerifyOptions,
) -> apsp_verify::VerifyReport {
    let (n, offsets, packed, group) = setup(g, p);
    apsp_verify::verify_program(
        p,
        opts,
        |comm| rank_program(comm, &packed, &group, &offsets, n),
        apsp_verify::digest_rows,
    )
}

/// Native-backend variant of [`distributed_johnson_verify`]: the
/// identical rank program records the same logical comm script over real
/// OS threads and the layer-1 static lint checks it (the layer-2
/// explorer needs the governed simulator; see `docs/VERIFICATION.md`).
pub fn distributed_johnson_native_verify(g: &Csr, p: usize) -> apsp_verify::VerifyReport {
    let (n, offsets, packed, group) = setup(g, p);
    apsp_verify::lint_recorded_outcome(
        p,
        NativeMachine::run_recorded(p, |comm| rank_program(comm, &packed, &group, &offsets, n)),
    )
}

/// Like [`distributed_johnson`], additionally returning every rank's
/// recorded comm script — the cost-model auditor's sampling hook
/// (`apsp audit`). All communication is the single replication
/// broadcast, so the scripts reduce to one `main` phase fitted against
/// the `(n + 2m)·log p` replication bound. Recording never touches the
/// §3.1 clocks, so the embedded report is byte-identical to a plain
/// run's.
pub fn distributed_johnson_recorded(
    g: &Csr,
    p: usize,
) -> (DJohnsonResult, Vec<Vec<apsp_simnet::CommEvent>>) {
    let (n, offsets, packed, group) = setup(g, p);
    let (rows, report, scripts) =
        Machine::run_recorded(p, |comm| rank_program(comm, &packed, &group, &offsets, n))
            .expect("fault-free recorded launch cannot fail");
    (assemble(n, &offsets, rows, report), scripts)
}

/// Like [`distributed_johnson`], under a deterministic fault plan: the
/// replication broadcast recovers (or fails loudly with a
/// [`MachineError`]) and the run reports its fault history.
pub fn distributed_johnson_faulty(
    g: &Csr,
    p: usize,
    plan: &FaultPlan,
    profiled: bool,
) -> Result<(DJohnsonResult, FaultSummary), MachineError> {
    let how = if profiled { Launch::Profiled } else { Launch::Plain };
    djohnson_launch(g, p, how.with_faults(plan))
        .map(|(res, faults)| (res, faults.expect("faulty run carries a summary")))
}

/// Like [`distributed_johnson_faulty`], but supervised: the two phases
/// (graph replication, source-partitioned Dijkstra) are checkpointed at
/// their boundaries, and killed ranks / dead links roll back and re-execute
/// under `policy` instead of aborting the run.
pub fn distributed_johnson_recovering(
    g: &Csr,
    p: usize,
    plan: &FaultPlan,
    policy: RecoveryPolicy,
    profiled: bool,
) -> Result<(DJohnsonResult, FaultSummary, RecoveryReport), MachineError> {
    let (n, offsets, packed, group) = setup(g, p);
    let (rows, report, faults, recovery) =
        Machine::launch_recovering(p, plan, policy, profiled, |comm| {
            rank_program(comm, &packed, &group, &offsets, n)
        })?;
    Ok((assemble(n, &offsets, rows, report), faults, recovery))
}

/// [`distributed_johnson_faulty`] on the **native** backend: the same
/// seeded plan over real channel traffic, with `kill=` rules killing
/// actual rank threads. Recovered runs are bit-identical to
/// [`distributed_johnson_native`].
pub fn distributed_johnson_native_faulty(
    g: &Csr,
    p: usize,
    plan: &FaultPlan,
) -> Result<(DJohnsonResult, FaultSummary), MachineError> {
    let _wall = apsp_metrics::time_phase("solve-djohnson-native");
    let (n, offsets, packed, group) = setup(g, p);
    let (rows, report, faults) = NativeMachine::launch_faulty(p, plan, |comm| {
        rank_program(comm, &packed, &group, &offsets, n)
    })?;
    Ok((assemble(n, &offsets, rows, report), faults))
}

/// [`distributed_johnson_recovering`] on the **native** backend:
/// phase-boundary checkpoints, thread-level kill and respawn,
/// spare-thread takeover for permanently dead ranks.
pub fn distributed_johnson_native_recovering(
    g: &Csr,
    p: usize,
    plan: &FaultPlan,
    policy: RecoveryPolicy,
) -> Result<(DJohnsonResult, FaultSummary, RecoveryReport), MachineError> {
    let _wall = apsp_metrics::time_phase("solve-djohnson-native");
    let (n, offsets, packed, group) = setup(g, p);
    let (rows, report, faults, recovery) =
        NativeMachine::launch_recovering(p, plan, policy, |comm| {
            rank_program(comm, &packed, &group, &offsets, n)
        })?;
    Ok((assemble(n, &offsets, rows, report), faults, recovery))
}

/// Host-side setup shared by all entry points: source offsets, the packed
/// graph held by rank 0, and the full-machine broadcast group.
fn setup(g: &Csr, p: usize) -> (usize, Vec<usize>, Vec<f64>, Vec<usize>) {
    assert!(g.has_nonnegative_weights(), "undirected APSP requires non-negative weights");
    let n = g.n();
    let sizes = balanced_sizes(n, p);
    let mut offsets = vec![0usize];
    let mut acc = 0;
    for &s in &sizes {
        acc += s;
        offsets.push(acc);
    }
    (n, offsets, pack_graph(g), (0..p).collect())
}

/// The SPMD rank program: phase 1 replicates the graph, phase 2 runs
/// Dijkstra from this rank's sources. Each phase ends at a checkpointable
/// boundary whose state is exactly the phase's output vector.
fn rank_program<C: Transport>(
    comm: &mut C,
    packed: &[f64],
    group: &[usize],
    offsets: &[usize],
    n: usize,
) -> Vec<f64> {
    // phase 1: graph replication (rank 0 holds the input)
    let mut state = if comm.phase_live() {
        let payload = (comm.rank() == 0).then(|| packed.to_vec());
        let data = comm.bcast(group, 0, 0x10, payload);
        comm.alloc(data.len());
        data
    } else {
        Vec::new()
    };
    state = comm.commit_phase(state);
    // phase 2: source-partitioned Dijkstra over the replicated graph
    let out = if comm.phase_live() {
        let local = unpack_graph(&state);
        let r = comm.rank();
        let my_sources = offsets[r]..offsets[r + 1];
        let mut out = Vec::with_capacity(my_sources.len() * n);
        let mut ops = 0u64;
        for s in my_sources {
            let row = oracle::dijkstra(&local, s);
            // charge ~ (m + n)·log n heap operations' scalar work
            ops +=
                (local.m() as u64 * 2 + n as u64) * (usize::BITS - n.max(2).leading_zeros()) as u64;
            out.extend_from_slice(&row);
        }
        comm.compute(ops);
        comm.alloc(out.len());
        out
    } else {
        Vec::new()
    };
    comm.commit_phase(out)
}

/// Host-side assembly, mirroring the other algorithms' result handling.
fn assemble(n: usize, offsets: &[usize], rows: Vec<Vec<f64>>, report: RunReport) -> DJohnsonResult {
    let mut dist = DenseDist::unconnected(n);
    for (r, block) in rows.into_iter().enumerate() {
        for (k, chunk) in block.chunks_exact(n.max(1)).enumerate() {
            let s = offsets[r] + k;
            for (t, &d) in chunk.iter().enumerate() {
                dist.set(s, t, d);
            }
        }
    }
    DJohnsonResult { dist, report }
}

fn djohnson_launch(
    g: &Csr,
    p: usize,
    how: Launch<'_>,
) -> Result<(DJohnsonResult, Option<FaultSummary>), MachineError> {
    let _wall = apsp_metrics::time_phase("solve-djohnson");
    let (n, offsets, packed, group) = setup(g, p);
    let (rows, report, faults) =
        Machine::launch(p, how, |comm| rank_program(comm, &packed, &group, &offsets, n))?;
    Ok((assemble(n, &offsets, rows, report), faults))
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::generators::{self, WeightKind};

    #[test]
    fn pack_unpack_roundtrip() {
        let g = generators::grid2d(4, 5, WeightKind::Integer { max: 7 }, 1);
        let packed = pack_graph(&g);
        let h = unpack_graph(&packed);
        assert_eq!(g, h);
    }

    #[test]
    fn matches_oracle_on_meshes() {
        let g = generators::grid2d(7, 7, WeightKind::Uniform { lo: 0.2, hi: 2.0 }, 3);
        let result = distributed_johnson(&g, 9);
        let reference = oracle::apsp_dijkstra(&g);
        assert!(result.dist.first_mismatch(&reference, 1e-9).is_none());
        // replication: total volume ≈ (graph words)·(something ≤ p)
        assert!(result.report.total_words() > 0);
    }

    #[test]
    fn handles_more_ranks_than_sources() {
        let g = generators::path(5, WeightKind::Unit, 0);
        let result = distributed_johnson(&g, 9);
        let reference = oracle::apsp_dijkstra(&g);
        assert!(result.dist.first_mismatch(&reference, 1e-9).is_none());
    }

    #[test]
    fn disconnected_graph() {
        let mut b = apsp_graph::GraphBuilder::new(10);
        b.add_edge(0, 1, 1.0);
        b.add_edge(8, 9, 4.0);
        let g = b.build();
        let result = distributed_johnson(&g, 4);
        let reference = oracle::apsp_dijkstra(&g);
        assert!(result.dist.first_mismatch(&reference, 1e-9).is_none());
    }

    #[test]
    fn latency_is_logarithmic() {
        let g = generators::grid2d(8, 8, WeightKind::Unit, 0);
        let r9 = distributed_johnson(&g, 9).report;
        let r49 = distributed_johnson(&g, 49).report;
        // one broadcast: L = ceil(log2 p)
        assert_eq!(r9.critical_latency(), 4);
        assert_eq!(r49.critical_latency(), 6);
    }
}
