//! Shared-memory supernodal Floyd–Warshall (SuperFW \[22\], §4).
//!
//! The sequential reference point of the paper: blocked FW driven by the
//! elimination tree, eliminating supernodes bottom-up and skipping every
//! block update whose operands are structurally empty (cousin blocks).
//! Compared with classical FW's `n³` scalar operations, the supernodal
//! elimination performs `O(n²|S|)`-ish work — a reduction of `Θ(n/|S|)` —
//! which [`superfw_opcount_comparison`] measures for the E7 experiment.

use crate::supernodal::SupernodalLayout;
use apsp_graph::{Csr, DenseDist};
use apsp_minplus::{fw_in_place, gemm, MinPlusMatrix};

/// Operation statistics of a [`superfw`] run.
#[derive(Clone, Copy, Debug, Default)]
pub struct SuperFwStats {
    /// Scalar min-plus relaxations performed.
    pub ops: u64,
    /// Block updates executed.
    pub block_updates: u64,
    /// Block updates skipped because an operand was structurally empty.
    pub block_skips: u64,
    /// Scalar ops in the `R¹` diagonal closures.
    pub r1_ops: u64,
    /// Scalar ops in the `R²` panel updates.
    pub r2_ops: u64,
    /// Scalar ops in the `R³`/`R⁴` outer products.
    pub r34_ops: u64,
}

impl SuperFwStats {
    /// The per-region counters partition the total: `r1 + r2 + r34 = ops`.
    pub fn region_ops_sum(&self) -> u64 {
        self.r1_ops + self.r2_ops + self.r34_ops
    }
}

/// Runs supernodal FW on the blocks of an eliminated-order graph.
///
/// `blocks` is the row-major `N × N` block matrix (see
/// [`SupernodalLayout::extract_all_blocks`]); it is updated in place to the
/// all-pairs distances. Empty-operand updates are skipped, which is exactly
/// the §4.1/§4.2 saving (legitimate because fill is confined to related
/// supernode pairs under the ND order).
pub fn superfw(layout: &SupernodalLayout, blocks: &mut [MinPlusMatrix]) -> SuperFwStats {
    let t = *layout.tree();
    let n_super = layout.n_super();
    assert_eq!(blocks.len(), n_super * n_super, "one block per grid cell");
    let at = |i: usize, j: usize| layout.rank_of_block(i, j);
    let mut stats = SuperFwStats::default();

    for l in 1..=t.height() {
        for k in t.level_nodes(l) {
            if layout.size(k) == 0 {
                continue;
            }
            // R1: diagonal closure
            let d = fw_in_place(&mut blocks[at(k, k)]);
            stats.ops += d;
            stats.r1_ops += d;
            stats.block_updates += 1;
            let akk = blocks[at(k, k)].clone();

            // R2: panels over related supernodes only
            let related: Vec<usize> = t.descendants(k).chain(t.ancestors(k)).collect();
            for &i in &related {
                if layout.size(i) == 0 {
                    continue;
                }
                let col = blocks[at(i, k)].clone();
                if col.is_empty_block() {
                    stats.block_skips += 1;
                } else {
                    let d = gemm(&mut blocks[at(i, k)], &col, &akk);
                    stats.ops += d;
                    stats.r2_ops += d;
                    stats.block_updates += 1;
                }
                let row = blocks[at(k, i)].clone();
                if row.is_empty_block() {
                    stats.block_skips += 1;
                } else {
                    let d = gemm(&mut blocks[at(k, i)], &akk, &row);
                    stats.ops += d;
                    stats.r2_ops += d;
                    stats.block_updates += 1;
                }
            }

            // R3/R4: outer products over related × related
            for &i in &related {
                if layout.size(i) == 0 {
                    continue;
                }
                let aik = blocks[at(i, k)].clone();
                if aik.is_empty_block() {
                    stats.block_skips += related.len() as u64;
                    continue;
                }
                for &j in &related {
                    if layout.size(j) == 0 {
                        continue;
                    }
                    let akj = blocks[at(k, j)].clone();
                    if akj.is_empty_block() {
                        stats.block_skips += 1;
                        continue;
                    }
                    let d = gemm(&mut blocks[at(i, j)], &aik, &akj);
                    stats.ops += d;
                    stats.r34_ops += d;
                    stats.block_updates += 1;
                }
            }
        }
    }
    stats
}

/// Level-parallel shared-memory SuperFW: same-level supernodes are cousins,
/// so their `R¹/R²/R³` updates touch pairwise disjoint blocks and run on
/// worker threads concurrently (the elimination-tree parallelism Sao et
/// al. exploit on shared memory); the overlapping `R⁴` ancestor blocks
/// serialize behind per-block locks, whose `⊕`-accumulation is
/// order-independent. Bit-identical results to [`superfw`] in exact
/// arithmetic paths (min/plus of the same operand sets).
pub fn superfw_parallel(layout: &SupernodalLayout, blocks: &mut [MinPlusMatrix]) -> SuperFwStats {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    let t = *layout.tree();
    let n_super = layout.n_super();
    assert_eq!(blocks.len(), n_super * n_super, "one block per grid cell");
    let at = |i: usize, j: usize| layout.rank_of_block(i, j);

    // move the blocks behind per-block locks for the parallel phase
    let cells: Vec<Mutex<MinPlusMatrix>> = blocks.iter().map(|b| Mutex::new(b.clone())).collect();
    let ops = AtomicU64::new(0);
    let updates = AtomicU64::new(0);
    let skips = AtomicU64::new(0);
    let region_ops: [AtomicU64; 3] = [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];

    for l in 1..=t.height() {
        let pivots: Vec<usize> = t.level_nodes(l).collect();
        apsp_par::par_for_indexed(pivots.len(), |pi| {
            let k = pivots[pi];
            if layout.size(k) == 0 {
                return;
            }
            let mut local_ops = 0u64;
            let mut local_updates = 0u64;
            let mut local_skips = 0u64;
            let mut local_region = [0u64; 3];
            // R1: diagonal closure (this pivot's own block — uncontended)
            let akk = {
                let mut diag = cells[at(k, k)].lock().expect("worker panicked");
                let d = fw_in_place(&mut diag);
                local_ops += d;
                local_region[0] += d;
                local_updates += 1;
                diag.clone()
            };
            let related: Vec<usize> = t.descendants(k).chain(t.ancestors(k)).collect();
            // R2 panels: blocks (i,k)/(k,i) belong to this pivot alone
            for &i in &related {
                if layout.size(i) == 0 {
                    continue;
                }
                {
                    let mut col = cells[at(i, k)].lock().expect("worker panicked");
                    if col.is_empty_block() {
                        local_skips += 1;
                    } else {
                        let snapshot = col.clone();
                        let d = gemm(&mut col, &snapshot, &akk);
                        local_ops += d;
                        local_region[1] += d;
                        local_updates += 1;
                    }
                }
                {
                    let mut row = cells[at(k, i)].lock().expect("worker panicked");
                    if row.is_empty_block() {
                        local_skips += 1;
                    } else {
                        let snapshot = row.clone();
                        let d = gemm(&mut row, &akk, &snapshot);
                        local_ops += d;
                        local_region[1] += d;
                        local_updates += 1;
                    }
                }
            }
            // R3/R4 outer products; ancestor×ancestor targets are shared
            // between same-level pivots and serialize on their locks
            for &i in &related {
                if layout.size(i) == 0 {
                    continue;
                }
                let aik = cells[at(i, k)].lock().expect("worker panicked").clone();
                if aik.is_empty_block() {
                    local_skips += related.len() as u64;
                    continue;
                }
                for &j in &related {
                    if layout.size(j) == 0 {
                        continue;
                    }
                    let akj = cells[at(k, j)].lock().expect("worker panicked").clone();
                    if akj.is_empty_block() {
                        local_skips += 1;
                        continue;
                    }
                    let mut target = cells[at(i, j)].lock().expect("worker panicked");
                    let d = gemm(&mut target, &aik, &akj);
                    local_ops += d;
                    local_region[2] += d;
                    local_updates += 1;
                }
            }
            ops.fetch_add(local_ops, Ordering::Relaxed);
            updates.fetch_add(local_updates, Ordering::Relaxed);
            skips.fetch_add(local_skips, Ordering::Relaxed);
            for (total, local) in region_ops.iter().zip(local_region) {
                total.fetch_add(local, Ordering::Relaxed);
            }
        });
    }

    for (cell, out) in cells.into_iter().zip(blocks.iter_mut()) {
        *out = cell.into_inner().expect("worker panicked");
    }
    let [r1, r2, r34] = region_ops;
    SuperFwStats {
        ops: ops.into_inner(),
        block_updates: updates.into_inner(),
        block_skips: skips.into_inner(),
        r1_ops: r1.into_inner(),
        r2_ops: r2.into_inner(),
        r34_ops: r34.into_inner(),
    }
}

/// End-to-end shared-memory sparse APSP: permute by `nd`, run [`superfw`],
/// un-permute. Returns distances (input vertex ids) and the statistics.
pub fn superfw_apsp(g: &Csr, nd: &apsp_partition::NdOrdering) -> (DenseDist, SuperFwStats) {
    let layout = SupernodalLayout::from_ordering(nd);
    let gp = g.permuted(&nd.perm);
    let mut blocks = layout.extract_all_blocks(&gp);
    let stats = superfw(&layout, &mut blocks);
    let dense = layout.assemble_dense(&blocks);
    (SupernodalLayout::unpermute(&dense, &nd.perm), stats)
}

/// The E7 experiment row: classical FW ops (`n³`) vs SuperFW ops on the
/// same graph, plus the separator statistic that predicts the ratio.
#[derive(Clone, Copy, Debug)]
pub struct OpcountComparison {
    /// Vertex count.
    pub n: usize,
    /// Top-level separator size.
    pub top_separator: usize,
    /// Classical FW scalar ops (`n³`).
    pub classical_ops: u64,
    /// SuperFW scalar ops.
    pub superfw_ops: u64,
}

impl OpcountComparison {
    /// Measured reduction factor `classical / superfw`.
    pub fn reduction(&self) -> f64 {
        self.classical_ops as f64 / self.superfw_ops.max(1) as f64
    }

    /// The paper's predicted reduction `Θ(n / |S|)`.
    pub fn predicted_reduction(&self) -> f64 {
        self.n as f64 / self.top_separator.max(1) as f64
    }
}

/// Measures classical-vs-supernodal operation counts for a graph/ordering.
pub fn superfw_opcount_comparison(g: &Csr, nd: &apsp_partition::NdOrdering) -> OpcountComparison {
    let (_, stats) = superfw_apsp(g, nd);
    OpcountComparison {
        n: g.n(),
        top_separator: nd.max_separator(),
        classical_ops: apsp_graph::oracle::classical_fw_opcount(g.n()),
        superfw_ops: stats.ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::generators::{self, WeightKind};
    use apsp_graph::oracle;
    use apsp_partition::{grid_nd, nested_dissection, NdOptions};

    #[test]
    fn fig1_graph_correct() {
        let g = generators::paper_fig1();
        let nd = nested_dissection(&g, 2, &NdOptions::default());
        let (dist, stats) = superfw_apsp(&g, &nd);
        let oracle = oracle::apsp_dijkstra(&g);
        assert!(dist.first_mismatch(&oracle, 1e-9).is_none());
        assert!(stats.block_updates > 0);
    }

    #[test]
    fn deep_tree_skips_empty_blocks() {
        // with h = 3 on a path, leaf-to-cousin-panel products are skipped
        let g = generators::path(16, WeightKind::Unit, 0);
        let nd = nested_dissection(&g, 3, &NdOptions::default());
        let (dist, stats) = superfw_apsp(&g, &nd);
        let oracle = oracle::apsp_dijkstra(&g);
        assert!(dist.first_mismatch(&oracle, 1e-9).is_none());
        assert!(stats.block_skips > 0, "sparsity should be exploited: {stats:?}");
    }

    #[test]
    fn grids_correct_across_heights() {
        let g = generators::grid2d(6, 6, WeightKind::Integer { max: 8 }, 2);
        let oracle = oracle::apsp_dijkstra(&g);
        for h in 1..=4 {
            let nd = nested_dissection(&g, h, &NdOptions::default());
            let (dist, _) = superfw_apsp(&g, &nd);
            assert!(dist.first_mismatch(&oracle, 1e-9).is_none(), "h={h}");
        }
    }

    #[test]
    fn random_graphs_correct() {
        for seed in 0..6 {
            let g =
                generators::connected_gnp(40, 0.08, WeightKind::Uniform { lo: 0.2, hi: 2.0 }, seed);
            let nd = nested_dissection(&g, 3, &NdOptions::default());
            let (dist, _) = superfw_apsp(&g, &nd);
            let oracle = oracle::apsp_dijkstra(&g);
            assert!(dist.first_mismatch(&oracle, 1e-9).is_none(), "seed {seed}");
        }
    }

    #[test]
    fn disconnected_graph_keeps_infinities() {
        let mut b = apsp_graph::GraphBuilder::new(8);
        for i in 0..3 {
            b.add_edge(i, i + 1, 1.0);
        }
        for i in 4..7 {
            b.add_edge(i, i + 1, 1.0);
        }
        let g = b.build();
        let nd = nested_dissection(&g, 2, &NdOptions::default());
        let (dist, _) = superfw_apsp(&g, &nd);
        let oracle = oracle::apsp_dijkstra(&g);
        assert!(dist.first_mismatch(&oracle, 1e-9).is_none());
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        for (seed, h) in [(0u64, 3u32), (1, 4), (2, 2)] {
            let g = generators::grid2d(10, 10, WeightKind::Integer { max: 7 }, seed);
            let nd = grid_nd(10, 10, h);
            let layout = SupernodalLayout::from_ordering(&nd);
            let gp = g.permuted(&nd.perm);
            let mut seq_blocks = layout.extract_all_blocks(&gp);
            let seq_stats = superfw(&layout, &mut seq_blocks);
            let mut par_blocks = layout.extract_all_blocks(&gp);
            let par_stats = superfw_parallel(&layout, &mut par_blocks);
            assert_eq!(seq_stats.ops, par_stats.ops, "h={h}");
            assert_eq!(seq_stats.block_updates, par_stats.block_updates);
            assert_eq!(seq_stats.r1_ops, par_stats.r1_ops, "h={h}");
            assert_eq!(seq_stats.r2_ops, par_stats.r2_ops, "h={h}");
            assert_eq!(seq_stats.r34_ops, par_stats.r34_ops, "h={h}");
            for (a, b) in seq_blocks.iter().zip(&par_blocks) {
                assert!(a.max_diff(b) == 0.0, "h={h}");
            }
        }
    }

    #[test]
    fn parallel_correct_on_random_graphs() {
        for seed in 0..4 {
            let g =
                generators::connected_gnp(50, 0.07, WeightKind::Uniform { lo: 0.3, hi: 2.0 }, seed);
            let nd = nested_dissection(&g, 3, &NdOptions::default());
            let layout = SupernodalLayout::from_ordering(&nd);
            let gp = g.permuted(&nd.perm);
            let mut blocks = layout.extract_all_blocks(&gp);
            superfw_parallel(&layout, &mut blocks);
            let dense = layout.assemble_dense(&blocks);
            let dist = SupernodalLayout::unpermute(&dense, &nd.perm);
            let reference = oracle::apsp_dijkstra(&g);
            assert!(dist.first_mismatch(&reference, 1e-9).is_none(), "seed {seed}");
        }
    }

    #[test]
    fn opcount_reduction_tracks_n_over_s() {
        // 16×16 grid, geometric dissection: |S| = 16, n = 256 → predicted ~16×
        let g = generators::grid2d(16, 16, WeightKind::Unit, 0);
        let nd = grid_nd(16, 16, 4);
        let cmp = superfw_opcount_comparison(&g, &nd);
        assert!(cmp.superfw_ops < cmp.classical_ops);
        // measured reduction within a small constant of the prediction
        let measured = cmp.reduction();
        let predicted = cmp.predicted_reduction();
        assert!(measured > predicted / 8.0, "measured {measured:.2} vs predicted {predicted:.2}");
    }

    #[test]
    fn region_ops_partition_the_total() {
        let g = generators::grid2d(10, 10, WeightKind::Integer { max: 5 }, 1);
        let nd = grid_nd(10, 10, 3);
        let (_, stats) = superfw_apsp(&g, &nd);
        assert!(stats.r1_ops > 0 && stats.r2_ops > 0 && stats.r34_ops > 0, "{stats:?}");
        assert_eq!(stats.region_ops_sum(), stats.ops, "{stats:?}");
    }

    #[test]
    fn deeper_trees_skip_more() {
        let g = generators::grid2d(12, 12, WeightKind::Unit, 0);
        let shallow = {
            let nd = grid_nd(12, 12, 2);
            superfw_apsp(&g, &nd).1
        };
        let deep = {
            let nd = grid_nd(12, 12, 4);
            superfw_apsp(&g, &nd).1
        };
        assert!(deep.ops < shallow.ops, "deep {} vs shallow {}", deep.ops, shallow.ops);
    }
}
