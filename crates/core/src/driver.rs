//! End-to-end public API: partition → permute → distribute → run → gather.

use crate::sparse2d::{
    sparse2d_faulty, sparse2d_profiled, sparse2d_recovering, sparse2d_with, R4Strategy,
    Sparse2dOptions,
};
use crate::supernodal::SupernodalLayout;
use apsp_graph::{Csr, DenseDist};
use apsp_partition::{grid_nd, nested_dissection, NdOptions, NdOrdering};
use apsp_simnet::{
    FaultPlan, FaultSummary, Machine, MachineError, RecoveryPolicy, RecoveryReport, RunReport,
};

/// Which execution backend runs the distributed solve.
///
/// Both backends execute the *identical* SPMD schedule — same messages,
/// same tags, same collectives — so the distance matrices they produce
/// are bit-for-bit equal. They differ in what the run measures:
///
/// * [`Backend::Sim`] is the §3.1 simulated machine (`apsp-simnet`):
///   exact latency/bandwidth/compute clocks, fault injection, tracing,
///   profiling, checkpoint/restart.
/// * [`Backend::Native`] runs the schedule on `p` OS threads over plain
///   channels (`apsp-transport`): no cost clocks (the report's counters
///   are all zero), but real wall-clock execution — the backend for
///   timing the actual message pattern. Fault injection and
///   checkpoint/restart run here too (the same seeded plans, with
///   `kill=` rules killing actual rank threads); only tracing,
///   profiling, and cost accounting stay simulator-only.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// The simulated distributed machine with §3.1 cost accounting.
    #[default]
    Sim,
    /// Native shared-memory execution: OS threads, no cost model.
    Native,
}

impl Backend {
    /// Parses a CLI backend name.
    ///
    /// # Errors
    /// A readable message naming the accepted values.
    pub fn parse(s: &str) -> Result<Backend, String> {
        match s {
            "sim" => Ok(Backend::Sim),
            "native" => Ok(Backend::Native),
            other => Err(format!("unknown backend {other} (expected sim or native)")),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Backend::Sim => "sim",
            Backend::Native => "native",
        })
    }
}

/// How the nested-dissection ordering is obtained.
#[derive(Clone, Copy, Debug)]
pub enum Ordering {
    /// Multilevel ND (`apsp-partition`), computed host-side — works on any
    /// graph; distribution can still be charged via
    /// [`SparseApspConfig::charge_ordering_distribution`].
    Multilevel,
    /// Exact geometric ND for a `rows × cols` grid graph (vertex ids must
    /// follow [`apsp_graph::generators::grid2d`]).
    Grid {
        /// Mesh row count.
        rows: usize,
        /// Mesh column count.
        cols: usize,
    },
    /// Distributed ND computed **on the simulated machine** (the §5.4.4
    /// pipeline, [`crate::dnd::dist_nested_dissection`]); its measured cost
    /// is folded into the run report.
    Distributed,
}

/// Configuration of a [`SparseApsp`] run.
#[derive(Clone, Copy, Debug)]
pub struct SparseApspConfig {
    /// Elimination-tree height `h`; the machine has `p = (2^h − 1)²` ranks.
    pub height: u32,
    /// Ordering strategy.
    pub ordering: Ordering,
    /// `R⁴` scheduling strategy (§5.2.2).
    pub r4: R4Strategy,
    /// Ship structurally empty blocks as header-only messages.
    pub compress_empty: bool,
    /// Also run the §5.4.4 ordering-distribution step on the machine and
    /// fold its cost into the report (scatter of the permutation).
    pub charge_ordering_distribution: bool,
    /// Collect the observability payload: span ledgers, the p×p
    /// communication matrix, and the event stream land on
    /// [`RunReport::profile`]. Every on-machine stage of the pipeline runs
    /// profiled, so the merged profile still satisfies the exact-sum
    /// invariant of [`apsp_simnet::PhaseBreakdown`].
    pub profile: bool,
    /// Checkpoint/restart policy for [`SparseApsp::run_faulty`]. `None`
    /// (the default) keeps the historical fail-fast behaviour: the first
    /// unrecoverable fault aborts the solve. `Some(policy)` supervises the
    /// solve instead — elimination levels are checkpointed and killed
    /// ranks roll back and re-execute (see
    /// [`apsp_simnet::Machine::launch_recovering`]).
    pub recovery: Option<RecoveryPolicy>,
    /// Execution backend for the distributed solve. [`Backend::Native`]
    /// is incompatible with the simulator-only features (`profile`,
    /// `charge_ordering_distribution`, [`Ordering::Distributed`],
    /// `recovery`) — the driver panics with a readable message rather
    /// than silently dropping them.
    pub backend: Backend,
}

impl Default for SparseApspConfig {
    fn default() -> Self {
        SparseApspConfig {
            height: 2,
            ordering: Ordering::Multilevel,
            r4: R4Strategy::OneToOne,
            compress_empty: false,
            charge_ordering_distribution: false,
            profile: false,
            recovery: None,
            backend: Backend::default(),
        }
    }
}

/// The outcome of an end-to-end run.
pub struct ApspRun {
    /// All-pairs distances in the input graph's vertex ids.
    pub dist: DenseDist,
    /// Measured communication/computation report (the algorithm itself;
    /// plus the ordering scatter when configured).
    pub report: RunReport,
    /// The ordering used (separator sizes feed the cost formulas).
    pub ordering: NdOrdering,
    /// Per-elimination-level `(latency, bandwidth)` critical-path deltas
    /// (Lemmas 5.6, 5.8, 5.9) — excludes the ordering-distribution step.
    pub level_costs: Vec<(u64, u64)>,
    /// Fault history, present when the run went through
    /// [`SparseApsp::run_faulty`]: injected/recovered counts per rank
    /// (`unrecoverable` is always 0 on a run that returned).
    pub faults: Option<FaultSummary>,
    /// Checkpoint/restart ledger, present when the run was supervised
    /// ([`SparseApspConfig::recovery`] set): restarts, rollback bytes,
    /// spare takeovers.
    pub recovery: Option<RecoveryReport>,
}

impl ApspRun {
    /// Reconstructs one shortest path from the computed distances — greedy
    /// neighbour descent over `g`, no predecessor matrices needed
    /// (see [`apsp_graph::paths::reconstruct_path`]).
    pub fn path(&self, g: &Csr, src: usize, dst: usize) -> Option<Vec<usize>> {
        apsp_graph::paths::reconstruct_path(g, &self.dist, src, dst, 1e-9)
    }
}

/// The 2D-SPARSE-APSP solver — the crate's main entry point.
///
/// ```
/// use apsp_core::{SparseApsp, SparseApspConfig};
/// use apsp_graph::generators::{grid2d, WeightKind};
///
/// let g = grid2d(6, 6, WeightKind::Unit, 0);
/// let run = SparseApsp::new(SparseApspConfig::default()).run(&g);
/// assert_eq!(run.dist.get(0, 1), 1.0);
/// assert!(run.report.critical_latency() > 0);
/// ```
pub struct SparseApsp {
    config: SparseApspConfig,
}

impl SparseApspConfig {
    /// Panics with a readable message when a simulator-only feature is
    /// combined with the native backend.
    fn assert_backend_compatible(&self) {
        if self.backend == Backend::Native {
            assert!(
                !self.profile,
                "the native backend has no §3.1 cost clocks to profile; use the sim backend \
                 for --trace/--profile"
            );
            assert!(
                !self.charge_ordering_distribution,
                "ordering-distribution cost accounting needs the simulated machine; use the \
                 sim backend"
            );
            assert!(
                !matches!(self.ordering, Ordering::Distributed),
                "the distributed-ordering pipeline runs on the simulated machine; use the sim \
                 backend or a host-side ordering"
            );
        }
    }
}

impl SparseApsp {
    /// Creates a solver with the given configuration.
    pub fn new(config: SparseApspConfig) -> Self {
        SparseApsp { config }
    }

    /// Solver on `p = (2^h − 1)²` simulated ranks with defaults.
    pub fn with_height(height: u32) -> Self {
        SparseApsp::new(SparseApspConfig { height, ..Default::default() })
    }

    /// Computes the ordering this configuration would use for `g` and the
    /// communication report of computing it (empty unless distributed).
    pub fn ordering_for(&self, g: &Csr) -> (NdOrdering, RunReport) {
        let _wall = apsp_metrics::time_phase("ordering");
        match self.config.ordering {
            Ordering::Multilevel => (
                nested_dissection(g, self.config.height, &NdOptions::default()),
                RunReport::default(),
            ),
            Ordering::Grid { rows, cols } => {
                assert_eq!(rows * cols, g.n(), "grid shape does not match the graph");
                (grid_nd(rows, cols, self.config.height), RunReport::default())
            }
            Ordering::Distributed => {
                let h = self.config.height;
                let p = ((1usize << h) - 1) * ((1usize << h) - 1);
                let result = if self.config.profile {
                    crate::dnd::dist_nested_dissection_profiled(g, h, p, 0)
                } else {
                    crate::dnd::dist_nested_dissection(g, h, p, 0)
                };
                (result.ordering, result.report)
            }
        }
    }

    /// Runs the full pipeline on a **directed** graph that may carry
    /// negative arcs (no negative cycles) — the §3.2 generality of the
    /// paper, meaningful in the directed setting. Johnson potentials
    /// re-weight the arcs non-negative (host-side Bellman–Ford), the
    /// directed solve runs, and distances are shifted back.
    ///
    /// # Errors
    /// Returns the negative-cycle report from the re-weighting phase.
    pub fn run_directed_negative(&self, dg: &apsp_graph::DiCsr) -> Result<ApspRun, String> {
        let (rg, h) = apsp_graph::digraph::johnson_reweight(dg)?;
        let mut run = self.run_directed(&rg);
        // shift distances back: d(u,v) = d'(u,v) − h(u) + h(v)
        let n = dg.n();
        for u in 0..n {
            for v in 0..n {
                let d = run.dist.get(u, v);
                if d.is_finite() {
                    run.dist.set(u, v, d - h[u] + h[v]);
                }
            }
        }
        Ok(run)
    }

    /// Runs the full pipeline on a **directed** graph (asymmetric weights
    /// over a symmetric pattern): nested dissection on the underlying
    /// pattern, then the directed schedule (`sparse2d_directed`). The
    /// distance matrix is generally asymmetric.
    pub fn run_directed(&self, dg: &apsp_graph::DiCsr) -> ApspRun {
        assert!(dg.has_nonnegative_weights(), "directed APSP requires non-negative finite weights");
        self.config.assert_backend_compatible();
        let pattern = dg.underlying_pattern();
        let (nd, ordering_report) = self.ordering_for(&pattern);
        nd.validate(&pattern).expect("ordering violates the §4.1 separation invariant");
        let layout = SupernodalLayout::from_ordering(&nd);
        let dgp = dg.permuted(&nd.perm);
        let mut report = RunReport::default();
        report.absorb(&ordering_report);
        let opts =
            Sparse2dOptions { r4: self.config.r4, compress_empty: self.config.compress_empty };
        let result = match (self.config.backend, self.config.profile) {
            (Backend::Native, _) => crate::sparse2d::sparse2d_native_directed(&layout, &dgp, &opts),
            (Backend::Sim, true) => {
                crate::sparse2d::sparse2d_directed_profiled(&layout, &dgp, &opts)
            }
            (Backend::Sim, false) => crate::sparse2d::sparse2d_directed(&layout, &dgp, &opts),
        };
        report.absorb(&result.report);
        let dist = SupernodalLayout::unpermute(&result.dist_eliminated, &nd.perm);
        ApspRun {
            dist,
            report,
            ordering: nd,
            level_costs: result.level_costs(),
            faults: None,
            recovery: None,
        }
    }

    /// Runs the full pipeline on `g`. Distances come back in the input
    /// vertex numbering; `report` holds the measured critical-path costs.
    pub fn run(&self, g: &Csr) -> ApspRun {
        assert!(
            g.has_nonnegative_weights(),
            "undirected APSP requires non-negative weights (a negative \
             undirected edge is a negative cycle)"
        );
        let _wall = apsp_metrics::time_phase("driver-run");
        apsp_metrics::counter("apsp_driver_solves_total", "Full pipeline solves started.").inc();
        self.config.assert_backend_compatible();
        let (nd, ordering_report) = self.ordering_for(g);
        // O(m) check, negligible next to the solve; an ordering violating
        // the cousin-separation invariant would make the distributed
        // algorithm silently wrong, so this is always on.
        nd.validate(g).expect("ordering violates the §4.1 separation invariant");
        let layout = SupernodalLayout::from_ordering(&nd);
        let gp = g.permuted(&nd.perm);

        let mut report = RunReport::default();
        report.absorb(&ordering_report);
        if self.config.charge_ordering_distribution {
            report.absorb(&distribute_ordering_cost(&layout, &nd, self.config.profile));
        }
        let opts =
            Sparse2dOptions { r4: self.config.r4, compress_empty: self.config.compress_empty };
        let result = match (self.config.backend, self.config.profile) {
            (Backend::Native, _) => crate::sparse2d::sparse2d_native(&layout, &gp, &opts),
            (Backend::Sim, true) => sparse2d_profiled(&layout, &gp, &opts),
            (Backend::Sim, false) => sparse2d_with(&layout, &gp, &opts),
        };
        report.absorb(&result.report);
        let dist = SupernodalLayout::unpermute(&result.dist_eliminated, &nd.perm);
        ApspRun {
            dist,
            report,
            ordering: nd,
            level_costs: result.level_costs(),
            faults: None,
            recovery: None,
        }
    }

    /// Like [`SparseApsp::run`], additionally returning every rank's
    /// recorded comm script — the cost-model auditor's sampling hook
    /// (`apsp audit`). The ordering pipeline runs exactly as in `run`
    /// (so [`ApspRun::ordering`] carries the real `|S|` the Table 2
    /// forms need), but host-side ordering costs are *not* absorbed
    /// into the report: the auditor fits the solve's communication
    /// against Theorems 5.7/5.10, which bound the solve alone.
    pub fn run_recorded(&self, g: &Csr) -> (ApspRun, Vec<Vec<apsp_simnet::CommEvent>>) {
        assert!(
            g.has_nonnegative_weights(),
            "undirected APSP requires non-negative weights (a negative \
             undirected edge is a negative cycle)"
        );
        let (nd, _) = self.ordering_for(g);
        nd.validate(g).expect("ordering violates the §4.1 separation invariant");
        let layout = SupernodalLayout::from_ordering(&nd);
        let gp = g.permuted(&nd.perm);
        let opts =
            Sparse2dOptions { r4: self.config.r4, compress_empty: self.config.compress_empty };
        let (result, scripts) = crate::sparse2d::sparse2d_recorded(&layout, &gp, &opts);
        let dist = SupernodalLayout::unpermute(&result.dist_eliminated, &nd.perm);
        let report = result.report.clone();
        (
            ApspRun {
                dist,
                report,
                ordering: nd,
                level_costs: result.level_costs(),
                faults: None,
                recovery: None,
            },
            scripts,
        )
    }

    /// Verifies the configured pipeline's communication schedule for `g`
    /// without running the plain solve: the ordering and layout are
    /// computed exactly as in [`SparseApsp::run`], then the schedule is
    /// recorded and linted (layer 1) and its wildcard delivery orders
    /// explored (layer 2) — see [`apsp_verify::verify_program`] and
    /// `docs/VERIFICATION.md`. Recording is zero-cost to the §3.1 ledgers.
    ///
    /// With [`SparseApspConfig::backend`] set to [`Backend::Native`], the
    /// schedule is recorded over real OS threads instead and checked by
    /// the layer-1 lint alone (the layer-2 explorer needs the governed
    /// simulator) — the same invariants, pinned on the real machine.
    pub fn verify(&self, g: &Csr, vopts: &apsp_verify::VerifyOptions) -> apsp_verify::VerifyReport {
        assert!(
            g.has_nonnegative_weights(),
            "undirected APSP requires non-negative weights (a negative \
             undirected edge is a negative cycle)"
        );
        let (nd, _) = self.ordering_for(g);
        nd.validate(g).expect("ordering violates the §4.1 separation invariant");
        let layout = SupernodalLayout::from_ordering(&nd);
        let gp = g.permuted(&nd.perm);
        let opts =
            Sparse2dOptions { r4: self.config.r4, compress_empty: self.config.compress_empty };
        match self.config.backend {
            Backend::Sim => crate::sparse2d::sparse2d_verify(&layout, &gp, &opts, vopts),
            Backend::Native => crate::sparse2d::sparse2d_native_verify(&layout, &gp, &opts),
        }
    }

    /// Runs the full pipeline on `g` with a deterministic fault plan
    /// active during the distributed solve. The ordering is computed
    /// host-side exactly as in [`SparseApsp::run`] (an ordering corrupted
    /// by a fault would be a different experiment); the solve itself runs
    /// under the plan and must recover or fail.
    ///
    /// On success, [`ApspRun::faults`] carries the injected/recovered
    /// counts and the recovery traffic is part of [`ApspRun::report`].
    /// With [`SparseApspConfig::recovery`] set, the solve additionally
    /// survives killed ranks and dead links by rolling back to the last
    /// checkpointed elimination level, and [`ApspRun::recovery`] reports
    /// the restart/rollback ledger.
    ///
    /// # Errors
    /// A [`MachineError`] naming the first undeliverable message (or, on a
    /// supervised run, a typed [`apsp_simnet::Unrecoverable`] once the
    /// restart budget is exhausted) — the run never returns silently wrong
    /// distances.
    pub fn run_faulty(&self, g: &Csr, plan: &FaultPlan) -> Result<ApspRun, MachineError> {
        assert!(
            g.has_nonnegative_weights(),
            "undirected APSP requires non-negative weights (a negative \
             undirected edge is a negative cycle)"
        );
        self.config.assert_backend_compatible();
        let (nd, ordering_report) = self.ordering_for(g);
        nd.validate(g).expect("ordering violates the §4.1 separation invariant");
        let layout = SupernodalLayout::from_ordering(&nd);
        let gp = g.permuted(&nd.perm);

        let mut report = RunReport::default();
        report.absorb(&ordering_report);
        if self.config.charge_ordering_distribution {
            report.absorb(&distribute_ordering_cost(&layout, &nd, self.config.profile));
        }
        let opts =
            Sparse2dOptions { r4: self.config.r4, compress_empty: self.config.compress_empty };
        let (result, faults, recovery) = match (self.config.backend, self.config.recovery) {
            (Backend::Sim, Some(policy)) => {
                let (result, faults, recovery) =
                    sparse2d_recovering(&layout, &gp, &opts, plan, policy, self.config.profile)?;
                (result, faults, Some(recovery))
            }
            (Backend::Sim, None) => {
                let (result, faults) =
                    sparse2d_faulty(&layout, &gp, &opts, plan, self.config.profile)?;
                (result, faults, None)
            }
            (Backend::Native, Some(policy)) => {
                let (result, faults, recovery) =
                    crate::sparse2d::sparse2d_native_recovering(&layout, &gp, &opts, plan, policy)?;
                (result, faults, Some(recovery))
            }
            (Backend::Native, None) => {
                let (result, faults) =
                    crate::sparse2d::sparse2d_native_faulty(&layout, &gp, &opts, plan)?;
                (result, faults, None)
            }
        };
        report.absorb(&result.report);
        let dist = SupernodalLayout::unpermute(&result.dist_eliminated, &nd.perm);
        Ok(ApspRun {
            dist,
            report,
            ordering: nd,
            level_costs: result.level_costs(),
            faults: Some(faults),
            recovery,
        })
    }
}

/// The §5.4.4 ordering-distribution step, measured on the machine: rank 0
/// broadcasts the permutation (`n` words) and the supernode sizes
/// (`N = √p` words); every rank derives its own block ranges from the
/// sizes. This is the replicated-ordering pattern real sparse solvers use,
/// and it costs `O(log p)` latency / `O(n·log p)` bandwidth — subsumed by
/// the APSP cost, as §5.4.4 claims. The separator *computation* itself
/// happens host-side (see DESIGN.md §1 — the paper likewise adopts the
/// cited parallel partitioner \[18\] rather than presenting one); its cited
/// cost is reported separately by `bounds::separator_bandwidth/latency`.
fn distribute_ordering_cost(
    layout: &SupernodalLayout,
    nd: &NdOrdering,
    profiled: bool,
) -> RunReport {
    let p = layout.p();
    let perm: Vec<f64> = nd.perm.as_order().iter().map(|&x| x as f64).collect();
    let sizes: Vec<f64> = (1..=layout.n_super()).map(|k| layout.size(k) as f64).collect();
    let group: Vec<usize> = (0..p).collect();
    let program = |comm: &mut apsp_simnet::Comm| {
        let mut span = comm.span("distribute-ordering", 0);
        let comm: &mut apsp_simnet::Comm = &mut span;
        // permutation broadcast
        let payload = (comm.rank() == 0).then(|| perm.clone());
        let data = comm.bcast(&group, 0, 0x0D157, payload);
        comm.alloc(data.len());
        // supernode-size broadcast; each rank derives its block ranges
        let payload = (comm.rank() == 0).then(|| sizes.clone());
        let sizes = comm.bcast(&group, 0, 0x0D158, payload);
        let (i, j) = layout.block_of_rank(comm.rank());
        let rows = sizes[i - 1] as usize;
        let cols = sizes[j - 1] as usize;
        assert_eq!((rows, cols), (layout.size(i), layout.size(j)));
    };
    let (_, report) =
        if profiled { Machine::run_profiled(p, program) } else { Machine::run(p, program) };
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::generators::{self, WeightKind};
    use apsp_graph::oracle;

    #[test]
    fn default_config_end_to_end() {
        let g = generators::grid2d(6, 6, WeightKind::Integer { max: 5 }, 1);
        let run = SparseApsp::new(SparseApspConfig::default()).run(&g);
        let reference = oracle::apsp_dijkstra(&g);
        assert!(run.dist.first_mismatch(&reference, 1e-9).is_none());
        assert!(run.report.critical_latency() > 0);
        assert!(run.ordering.validate(&g).is_ok());
    }

    #[test]
    fn grid_ordering_end_to_end() {
        let g = generators::grid2d(8, 8, WeightKind::Uniform { lo: 0.5, hi: 1.5 }, 2);
        let config = SparseApspConfig {
            height: 3,
            ordering: Ordering::Grid { rows: 8, cols: 8 },
            ..Default::default()
        };
        let run = SparseApsp::new(config).run(&g);
        let reference = oracle::apsp_dijkstra(&g);
        assert!(run.dist.first_mismatch(&reference, 1e-9).is_none());
    }

    #[test]
    fn ordering_distribution_adds_cost() {
        let g = generators::grid2d(6, 6, WeightKind::Unit, 0);
        let base = SparseApsp::new(SparseApspConfig::default()).run(&g);
        let charged = SparseApsp::new(SparseApspConfig {
            charge_ordering_distribution: true,
            ..Default::default()
        })
        .run(&g);
        assert!(charged.report.total_words() > base.report.total_words());
        let reference = oracle::apsp_dijkstra(&g);
        assert!(charged.dist.first_mismatch(&reference, 1e-9).is_none());
    }

    #[test]
    fn negative_arcs_solved_via_reweighting() {
        // mesh pattern with some negative forward arcs, no negative cycles:
        // make a DAG-ish orientation carry the negatives (row-major order)
        let base = generators::grid2d(5, 5, WeightKind::Unit, 0);
        let mut b = apsp_graph::DiGraphBuilder::new(base.n());
        for (idx, (u, v, _)) in base.edges().enumerate() {
            // u < v always (edges() yields ordered pairs): negatives only
            // forward along the order → acyclic negative structure
            let fwd = if idx % 5 == 0 { -1.0 } else { 1.0 + (idx % 3) as f64 };
            b.add_arc(u, v, fwd);
            b.add_arc(v, u, 2.0 + (idx % 4) as f64);
        }
        let dg = b.build();
        let run = SparseApsp::with_height(2).run_directed_negative(&dg).unwrap();
        // verify against directed Bellman–Ford per source
        for s in [0usize, 7, 24] {
            let truth = apsp_graph::digraph::bellman_ford_directed(&dg, s).unwrap();
            for (t, &d) in truth.iter().enumerate() {
                let got = run.dist.get(s, t);
                assert!(
                    (got - d).abs() < 1e-9 || (got.is_infinite() && d.is_infinite()),
                    "({s},{t}): {got} vs {d}"
                );
            }
        }
        // negative distances actually appear
        assert!((0..dg.n()).any(|t| run.dist.get(0, t) < 0.0));
    }

    #[test]
    fn negative_cycle_is_reported() {
        let mut b = apsp_graph::DiGraphBuilder::new(3);
        b.add_arc(0, 1, 1.0);
        b.add_arc(1, 2, -3.0);
        b.add_arc(2, 0, 1.0);
        let dg = b.build();
        assert!(SparseApsp::with_height(2).run_directed_negative(&dg).is_err());
    }

    #[test]
    fn directed_end_to_end() {
        // a mesh with one-way "streets": forward weights only on odd edges
        let base = generators::grid2d(6, 6, WeightKind::Unit, 0);
        let mut b = apsp_graph::DiGraphBuilder::new(base.n());
        for (idx, (u, v, _)) in base.edges().enumerate() {
            b.add_arc(u, v, 1.0 + (idx % 3) as f64);
            if idx % 4 != 0 {
                b.add_arc(v, u, 1.0 + (idx % 5) as f64);
            }
        }
        let dg = b.build();
        let run = SparseApsp::with_height(2).run_directed(&dg);
        let reference = apsp_graph::digraph::apsp_dijkstra_directed(&dg);
        assert!(run.dist.first_mismatch(&reference, 1e-9).is_none());
        // asymmetric distances really occur
        let asym = (0..dg.n())
            .flat_map(|i| (0..dg.n()).map(move |j| (i, j)))
            .any(|(i, j)| (run.dist.get(i, j) - run.dist.get(j, i)).abs() > 1e-9);
        assert!(asym, "expected at least one asymmetric pair");
    }

    #[test]
    fn distributed_ordering_end_to_end() {
        let g = generators::grid2d(8, 8, WeightKind::Integer { max: 4 }, 6);
        let config =
            SparseApspConfig { height: 3, ordering: Ordering::Distributed, ..Default::default() };
        let run = SparseApsp::new(config).run(&g);
        let reference = oracle::apsp_dijkstra(&g);
        assert!(run.dist.first_mismatch(&reference, 1e-9).is_none());
        // the pipeline cost is included
        let host_only =
            SparseApsp::new(SparseApspConfig { height: 3, ..Default::default() }).run(&g);
        assert!(run.report.total_words() > host_only.report.total_words());
    }

    #[test]
    fn profiled_run_breakdown_sums_to_critical_totals() {
        let g = generators::grid2d(8, 8, WeightKind::Integer { max: 4 }, 3);
        let config = SparseApspConfig { height: 3, profile: true, ..Default::default() };
        let run = SparseApsp::new(config).run(&g);
        let reference = oracle::apsp_dijkstra(&g);
        assert!(run.dist.first_mismatch(&reference, 1e-9).is_none());
        let bd = run.report.phase_breakdown(0).expect("profiled run carries a breakdown");
        assert!(bd.exact, "uniform SPMD schedule should attribute exactly");
        let total = bd.total();
        assert_eq!(total.latency, run.report.critical_latency());
        assert_eq!(total.bandwidth, run.report.critical_bandwidth());
        assert_eq!(total.compute, run.report.critical_compute());
        // one `level` phase per elimination level
        let levels = bd.rows.iter().filter(|r| r.name == "level").count();
        assert_eq!(levels, 3);
    }

    #[test]
    fn profiled_pipeline_with_distribution_stays_exact() {
        let g = generators::grid2d(6, 6, WeightKind::Unit, 0);
        let config = SparseApspConfig {
            charge_ordering_distribution: true,
            profile: true,
            ..Default::default()
        };
        let run = SparseApsp::new(config).run(&g);
        let bd = run.report.phase_breakdown(0).expect("profiled");
        assert!(bd.exact, "distribute + solve is still a uniform schedule");
        assert!(bd.rows.iter().any(|r| r.name == "distribute-ordering"));
        let total = bd.total();
        assert_eq!(total.latency, run.report.critical_latency());
        assert_eq!(total.bandwidth, run.report.critical_bandwidth());
        assert_eq!(total.compute, run.report.critical_compute());
    }

    #[test]
    fn profiled_distributed_ordering_reports_pipeline_phases() {
        let g = generators::grid2d(8, 8, WeightKind::Unit, 2);
        let config = SparseApspConfig {
            height: 2,
            ordering: Ordering::Distributed,
            profile: true,
            ..Default::default()
        };
        let run = SparseApsp::new(config).run(&g);
        let bd = run.report.phase_breakdown(0).expect("profiled");
        // ND rank groups diverge, so attribution falls back to grouped —
        // but the pipeline steps must still show up
        assert!(bd.rows.iter().any(|r| r.name.starts_with("nd-")));
        assert!(bd.rows.iter().any(|r| r.name == "level"));
        let comm = &run.report.profile.as_ref().unwrap().comm_matrix;
        assert!(comm.words(0, 1) > 0 || comm.words(1, 0) > 0);
    }

    #[test]
    fn faulty_run_recovers_to_oracle() {
        let g = generators::grid2d(6, 6, WeightKind::Integer { max: 5 }, 1);
        let plan = apsp_simnet::FaultPlan::new(99).with_drop(0.05).with_dup(0.03);
        let run = SparseApsp::new(SparseApspConfig::default())
            .run_faulty(&g, &plan)
            .expect("recoverable plan");
        let reference = oracle::apsp_dijkstra(&g);
        assert!(run.dist.first_mismatch(&reference, 1e-9).is_none());
        let summary = run.faults.expect("faulty run carries a summary");
        assert!(summary.injected() > 0, "5% drop over a real schedule must fire");
        assert_eq!(summary.unrecoverable, 0);
        // recovery traffic is charged: strictly more messages than clean
        let clean = SparseApsp::new(SparseApspConfig::default()).run(&g);
        assert!(run.report.total_messages() > clean.report.total_messages());
    }

    #[test]
    fn empty_plan_run_is_byte_identical_to_plain() {
        let g = generators::grid2d(6, 6, WeightKind::Integer { max: 5 }, 1);
        let config = SparseApspConfig { profile: true, ..Default::default() };
        let plain = SparseApsp::new(config).run(&g);
        let faulty = SparseApsp::new(config)
            .run_faulty(&g, &apsp_simnet::FaultPlan::new(123))
            .expect("empty plan cannot fail");
        assert!(plain.dist.first_mismatch(&faulty.dist, 0.0).is_none());
        assert_eq!(plain.report.per_rank, faulty.report.per_rank);
        assert_eq!(plain.report.profile, faulty.report.profile);
        assert_eq!(faulty.faults.unwrap().injected(), 0);
    }

    #[test]
    fn dead_link_fails_the_driver_loudly() {
        let g = generators::grid2d(6, 6, WeightKind::Unit, 0);
        // rank 0 (block A11) must ship its closure to rank 2 (block A13) —
        // a link the default 9-rank schedule provably uses
        let plan = apsp_simnet::FaultPlan::new(5).with_kill(0, 2);
        let err = match SparseApsp::new(SparseApspConfig::default()).run_faulty(&g, &plan) {
            Ok(_) => panic!("a dead link in a 9-rank solve is unrecoverable"),
            Err(e) => e,
        };
        let MachineError::Fault(err) = err else {
            panic!("expected a fault error, got {err}");
        };
        assert_eq!((err.src, err.dst), (0, 2));
    }

    #[test]
    fn supervised_run_survives_a_killed_rank() {
        let g = generators::grid2d(6, 6, WeightKind::Integer { max: 5 }, 1);
        let plan = apsp_simnet::FaultPlan::new(7).with_kill_rank_from(4, 1);
        let config =
            SparseApspConfig { recovery: Some(RecoveryPolicy::default()), ..Default::default() };
        let run = SparseApsp::new(config).run_faulty(&g, &plan).expect("supervised run recovers");
        let reference = oracle::apsp_dijkstra(&g);
        assert!(run.dist.first_mismatch(&reference, 1e-9).is_none());
        let recovery = run.recovery.expect("supervised run carries a recovery report");
        assert!(recovery.restarts >= 1, "the killed rank must force a restart");
        assert_eq!(recovery.spare_takeovers.len(), 1);
        assert_eq!(run.faults.expect("summary").unrecoverable, 0);
    }

    #[test]
    fn supervised_run_exhausts_its_budget_loudly() {
        let g = generators::grid2d(6, 6, WeightKind::Unit, 0);
        // a rank kill with no spares can never be outrun by restarts
        let plan = apsp_simnet::FaultPlan::new(7).with_kill_rank(4);
        let config = SparseApspConfig {
            recovery: Some(RecoveryPolicy { max_restarts: 2, every: 1, spares: 0 }),
            ..Default::default()
        };
        let err = match SparseApsp::new(config).run_faulty(&g, &plan) {
            Ok(_) => panic!("no spares means the kill is unrecoverable"),
            Err(e) => e,
        };
        assert!(matches!(err, MachineError::Unrecoverable(_)), "got {err}");
    }

    #[test]
    fn native_faulty_run_recovers_to_oracle() {
        let g = generators::grid2d(6, 6, WeightKind::Integer { max: 5 }, 1);
        let plan = apsp_simnet::FaultPlan::new(99).with_drop(0.05).with_dup(0.03);
        let config = SparseApspConfig { backend: Backend::Native, ..Default::default() };
        let run = SparseApsp::new(config).run_faulty(&g, &plan).expect("recoverable plan");
        let reference = oracle::apsp_dijkstra(&g);
        assert!(run.dist.first_mismatch(&reference, 1e-9).is_none());
        let summary = run.faults.expect("faulty run carries a summary");
        assert!(summary.injected() > 0, "5% drop over a real schedule must fire");
        assert_eq!(summary.unrecoverable, 0);
        // and the recovered distances are bit-identical to the clean native run
        let clean = SparseApsp::new(config).run(&g);
        assert!(run.dist.first_mismatch(&clean.dist, 0.0).is_none());
    }

    #[test]
    fn native_supervised_run_survives_a_killed_rank() {
        let g = generators::grid2d(6, 6, WeightKind::Integer { max: 5 }, 1);
        let plan = apsp_simnet::FaultPlan::new(7).with_kill_rank_from(4, 1);
        let config = SparseApspConfig {
            backend: Backend::Native,
            recovery: Some(RecoveryPolicy::default()),
            ..Default::default()
        };
        let run = SparseApsp::new(config).run_faulty(&g, &plan).expect("supervised run recovers");
        let clean =
            SparseApsp::new(SparseApspConfig { backend: Backend::Native, ..Default::default() })
                .run(&g);
        assert!(run.dist.first_mismatch(&clean.dist, 0.0).is_none(), "bit-identical recovery");
        let recovery = run.recovery.expect("supervised run carries a recovery report");
        assert!(recovery.restarts >= 1, "the killed rank must force a restart");
        assert_eq!(recovery.spare_takeovers.len(), 1);
        assert_eq!(run.faults.expect("summary").unrecoverable, 0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_rejected() {
        let g = apsp_graph::GraphBuilder::new(2).edge(0, 1, -1.0).build();
        let _ = SparseApsp::with_height(2).run(&g);
    }

    #[test]
    #[should_panic(expected = "grid shape")]
    fn wrong_grid_shape_rejected() {
        let g = generators::path(5, WeightKind::Unit, 0);
        let config = SparseApspConfig {
            ordering: Ordering::Grid { rows: 2, cols: 2 },
            ..Default::default()
        };
        let _ = SparseApsp::new(config).run(&g);
    }
}
