//! **2D-SPARSE-APSP (Algorithm 1)** — the paper's communication-avoiding
//! distributed sparse APSP.
//!
//! The `√p × √p` grid assigns block `A(i, j)` to processor `P_{i,j}`
//! (block layout, §5.1). Supernodes are eliminated level by level, and the
//! elimination of level `l` updates the four regions of §5.2 in order:
//!
//! 1. `R¹` — every pivot `P_{k,k}` closes `A(k,k)` locally (no messages);
//! 2. `R²` — `P_{k,k}` broadcasts the closed pivot down its column and row;
//!    panels update;
//! 3. `R³` — panels broadcast along their rows, then columns; each single-
//!    unit block applies `A(i,j) ⊕= A(i,k) ⊗ A(k,j)`;
//! 4. `R⁴` — the ancestor × ancestor blocks. With
//!    [`R4Strategy::OneToOne`], every computing unit runs on its own
//!    processor `P_{f,g}` (Corollary 5.5): panels broadcast to the workers,
//!    workers multiply in parallel, and per-block min-plus reductions
//!    deliver the results to `P_{i,j}`, which finally mirrors to
//!    `P_{j,i}`. With [`R4Strategy::SequentialUnits`] (the §5.2.2 "trivial
//!    strategy" ablation), `P_{i,j}` instead receives all `2q` panel
//!    messages itself and multiplies sequentially.
//!
//! The run captures **per-level critical-path clocks**, so the per-level
//! lemmas are directly measurable: Lemma 5.6 (`L_l = O(log p)`) and
//! Lemmas 5.8/5.9 (`B_1` carries the `n²log p/p` term, `B_l` for `l ≥ 2`
//! only separator-sized terms).
//!
//! With [`Sparse2dOptions::compress_empty`], structurally empty (all-`∞`)
//! blocks travel as zero-length payloads — a header-only message, the way
//! real sparse solvers ship empty frontal updates. Latency is unchanged;
//! bandwidth drops on very sparse inputs.
//!
//! [`sparse2d_directed`] runs the same schedule on **directed** inputs
//! (asymmetric weights over a symmetric pattern): `R¹–R³` are already
//! orientation-correct; `R⁴` swaps the transpose mirror for dual-
//! orientation computing units on the same Corollary 5.5 workers (see
//! `docs/ALGORITHM.md`).
//!
//! ## Deadlock discipline
//!
//! Phases run in a fixed global order. Within a phase, either every rank
//! belongs to at most one communication group (R², R³ — groups are
//! pairwise disjoint), or ranks hold at most two roles and execute them
//! sorted by a deterministic key shared by all participants (R⁴). Message
//! edges therefore never point backwards in (phase, key) order and the
//! wait-for graph is acyclic.

use crate::supernodal::SupernodalLayout;
use apsp_etree::{mapping, SchedTree};
use apsp_graph::{Csr, DenseDist};
use apsp_minplus::{fw_in_place, gemm, MinPlusMatrix};
use apsp_simnet::{
    Clocks, FaultPlan, FaultSummary, Launch, Machine, MachineError, RecoveryPolicy, RecoveryReport,
    RunReport,
};
use apsp_transport::{NativeMachine, Transport};

/// How the `R⁴` computing units are scheduled (§5.2.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum R4Strategy {
    /// Corollary 5.5: one unit per processor, parallel multiply, tree
    /// reduction — `O(log p)` latency per level.
    OneToOne,
    /// The SuperLU_DIST-style trivial strategy: `P_{i,j}` receives `2q`
    /// messages and multiplies sequentially — `O(2^{h−l})` latency.
    SequentialUnits,
}

/// Tuning options for a [`sparse2d_with`] run.
#[derive(Clone, Copy, Debug)]
pub struct Sparse2dOptions {
    /// `R⁴` scheduling strategy.
    pub r4: R4Strategy,
    /// Ship structurally empty blocks as zero-length payloads.
    pub compress_empty: bool,
}

impl Default for Sparse2dOptions {
    fn default() -> Self {
        Sparse2dOptions { r4: R4Strategy::OneToOne, compress_empty: false }
    }
}

/// Result of a distributed run: final blocks in eliminated order plus the
/// measured communication report.
pub struct Sparse2dResult {
    /// The distance matrix in the *eliminated* ordering.
    pub dist_eliminated: DenseDist,
    /// Per-rank and critical-path costs.
    pub report: RunReport,
    /// Critical-path clocks *after each level* (cumulative, one entry per
    /// level `1..=h`); differences give the per-level costs of
    /// Lemmas 5.6/5.8/5.9.
    pub level_clocks: Vec<Clocks>,
}

impl Sparse2dResult {
    /// Per-level critical-path cost deltas `(latency, bandwidth)` —
    /// `L_l` and `B_l` in the paper's notation.
    pub fn level_costs(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.level_clocks.len());
        let mut prev = Clocks::default();
        for c in &self.level_clocks {
            out.push((
                c.latency.saturating_sub(prev.latency),
                c.bandwidth.saturating_sub(prev.bandwidth),
            ));
            prev = *c;
        }
        out
    }
}

/// Tag construction: phases are disambiguated so schedule bugs fail fast.
fn tag(l: u32, phase: u64, k: usize, aux: usize) -> u64 {
    ((l as u64) << 56) | (phase << 48) | ((k as u64) << 24) | aux as u64
}

/// Serializes a block for transmission, optionally compressing all-`∞`
/// blocks to a zero-length payload.
fn encode(m: &MinPlusMatrix, compress: bool) -> Vec<f64> {
    if compress && m.words() > 0 && m.is_empty_block() {
        Vec::new()
    } else {
        m.as_slice().to_vec()
    }
}

/// Inverse of [`encode`]: an empty payload for a non-empty shape is the
/// all-`∞` block.
fn decode(rows: usize, cols: usize, data: Vec<f64>) -> MinPlusMatrix {
    if data.len() == rows * cols {
        MinPlusMatrix::from_raw(rows, cols, data)
    } else {
        assert!(data.is_empty(), "payload length {} for {rows}x{cols} block", data.len());
        MinPlusMatrix::empty(rows, cols)
    }
}

/// Sorted labels of `{k} ∪ 𝒜(k) ∪ 𝒟(k)` (ascending label order — which is
/// ascending rank order along a row or column of the grid).
fn rel_with_self(t: &SchedTree, k: usize) -> Vec<usize> {
    let mut v: Vec<usize> = t.descendants(k).collect();
    v.sort_unstable();
    v.push(k);
    v.extend(t.ancestors(k));
    v
}

/// The unique level-`l` pivot `k` for which `(i, j)` is an `R³` block, if
/// any (§5.2.1 membership rule).
fn r3_pivot(t: &SchedTree, l: u32, i: usize, j: usize) -> Option<usize> {
    let (li, lj) = (t.level(i), t.level(j));
    if li == l || lj == l {
        return None; // pivot diagonal or panels — not R³
    }
    let ki = (li < l).then(|| t.ancestor_at(i, l));
    let kj = (lj < l).then(|| t.ancestor_at(j, l));
    match (ki, kj) {
        (Some(a), Some(b)) => (a == b).then_some(a),
        (Some(a), None) => t.related(j, a).then_some(a),
        (None, Some(b)) => t.related(i, b).then_some(b),
        (None, None) => None, // both above level l: R⁴ territory
    }
}

/// Target columns of the `R³` row broadcast from panel `(i, k)`:
/// the columns `j` with `(i, j) ∈ R³` via `k`.
fn r3_row_targets(t: &SchedTree, l: u32, i: usize, k: usize) -> Vec<usize> {
    if t.level(i) < l {
        // i ∈ 𝒟(k): everything related to k except k itself
        rel_with_self(t, k).into_iter().filter(|&j| j != k).collect()
    } else {
        // i ∈ 𝒜(k): only descendants (ancestor × ancestor is R⁴)
        let mut v: Vec<usize> = t.descendants(k).collect();
        v.sort_unstable();
        v
    }
}

/// Is `(i, j)` an upper `R⁴` block at level `l` (`level(i) ≤ level(j)`,
/// both above `l`, related)?
fn is_r4_upper(t: &SchedTree, l: u32, i: usize, j: usize) -> bool {
    let (li, lj) = (t.level(i), t.level(j));
    li > l && lj > l && li <= lj && t.related(i, j)
}

/// The per-rank program: runs Algorithm 1 for this rank's block. Returns
/// the final block buffer and the cumulative clocks after each level.
/// `init` builds a rank's initial block (undirected or directed
/// adjacency); `directed` switches the `R⁴` phase to the no-mirror dual
/// schedule.
fn rank_program<C: Transport>(
    comm: &mut C,
    layout: &SupernodalLayout,
    init: &(dyn Fn(usize, usize) -> MinPlusMatrix + Sync),
    opts: &Sparse2dOptions,
    directed: bool,
) -> (Vec<f64>, Vec<Clocks>) {
    let t = *layout.tree();
    let h = t.height();
    let (bi, bj) = layout.block_of_rank(comm.rank());

    let mut block = init(bi, bj);
    comm.alloc(block.words());
    let mut level_clocks = Vec::with_capacity(h as usize);

    // Every elimination level is a checkpointable phase: its boundary state
    // is the block plus the per-level clock snapshots accumulated so far,
    // so a restored rank resumes with both its distances and its Lemma
    // 5.6/5.8/5.9 measurements intact.
    for l in 1..=h {
        if comm.phase_live() {
            level_clocks.push(level_round(comm, layout, &t, l, bi, bj, &mut block, opts, directed));
        }
        let (rows, cols) = (block.rows(), block.cols());
        let packed =
            encode_state(std::mem::replace(&mut block, MinPlusMatrix::empty(0, 0)), &level_clocks);
        let (restored, clocks) = decode_state(rows, cols, comm.commit_phase(packed));
        block = restored;
        level_clocks = clocks;
    }

    (block.into_vec(), level_clocks)
}

/// Appends the per-level clock snapshots to a block's word vector so a
/// phase checkpoint carries both (three bit-cast words per level).
fn encode_state(block: MinPlusMatrix, level_clocks: &[Clocks]) -> Vec<f64> {
    let mut state = block.into_vec();
    state.reserve(3 * level_clocks.len());
    for c in level_clocks {
        state.push(f64::from_bits(c.latency));
        state.push(f64::from_bits(c.bandwidth));
        state.push(f64::from_bits(c.compute));
    }
    state
}

/// Inverse of [`encode_state`]: splits a committed state back into the
/// block and the per-level clock snapshots (the level count is implied by
/// the trailing length — block dimensions never change across levels).
fn decode_state(rows: usize, cols: usize, mut state: Vec<f64>) -> (MinPlusMatrix, Vec<Clocks>) {
    let nb = rows * cols;
    let clocks = state[nb..]
        .chunks_exact(3)
        .map(|c| Clocks {
            latency: c[0].to_bits(),
            bandwidth: c[1].to_bits(),
            compute: c[2].to_bits(),
        })
        .collect();
    state.truncate(nb);
    (MinPlusMatrix::from_raw(rows, cols, state), clocks)
}

/// One elimination level of Algorithm 1 (`R¹`–`R⁴`), wrapped in its phase
/// spans. Returns the cumulative critical-path clocks after the level.
#[allow(clippy::too_many_arguments)]
fn level_round<C: Transport>(
    comm: &mut C,
    layout: &SupernodalLayout,
    t: &SchedTree,
    l: u32,
    bi: usize,
    bj: usize,
    block: &mut MinPlusMatrix,
    opts: &Sparse2dOptions,
    directed: bool,
) -> Clocks {
    let h = t.height();
    let rank_of = |i: usize, j: usize| layout.rank_of_block(i, j);
    let size = |k: usize| layout.size(k);
    let compress = opts.compress_empty;

    {
        // phase spans: one top-level "level" span per elimination level,
        // with the paper's computing units R¹–R⁴ nested inside — free
        // unless the run is profiled (see `Comm::span`)
        let mut level_span = comm.span("level", l as u64);
        let comm: &mut C = &mut level_span;

        // ---------------- R¹: diagonal pivot closure ----------------
        {
            let mut r1_span = comm.span("r1", l as u64);
            let comm: &mut C = &mut r1_span;
            if bi == bj && t.level(bi) == l {
                let ops = fw_in_place(block);
                comm.compute(ops);
            }
        }

        // ---------------- R²: pivot broadcasts + panel updates ----------------
        {
            let mut r2_span = comm.span("r2", l as u64);
            let comm: &mut C = &mut r2_span;
            // column phase: pivot k = bj broadcasts A(k,k)* down column k
            if t.level(bj) == l && t.related(bi, bj) {
                let k = bj;
                let group: Vec<usize> =
                    rel_with_self(t, k).iter().map(|&i| rank_of(i, k)).collect();
                let root = rank_of(k, k);
                let payload = (bi == k).then(|| encode(block, compress));
                let data = comm.bcast(&group, root, tag(l, 1, k, 0), payload);
                if bi != k {
                    let akk = decode(size(k), size(k), data);
                    comm.alloc(akk.words());
                    let snapshot = block.clone();
                    comm.alloc(snapshot.words());
                    let ops = gemm(block, &snapshot, &akk);
                    comm.compute(ops);
                    comm.release(snapshot.words());
                    comm.release(akk.words());
                }
            }
            // row phase: pivot k = bi broadcasts A(k,k)* along row k
            if t.level(bi) == l && t.related(bi, bj) {
                let k = bi;
                let group: Vec<usize> =
                    rel_with_self(t, k).iter().map(|&j| rank_of(k, j)).collect();
                let root = rank_of(k, k);
                let payload = (bj == k).then(|| encode(block, compress));
                let data = comm.bcast(&group, root, tag(l, 2, k, 0), payload);
                if bj != k {
                    let akk = decode(size(k), size(k), data);
                    comm.alloc(akk.words());
                    let snapshot = block.clone();
                    comm.alloc(snapshot.words());
                    let ops = gemm(block, &akk, &snapshot);
                    comm.compute(ops);
                    comm.release(snapshot.words());
                    comm.release(akk.words());
                }
            }
        }

        // ---------------- R³: panel broadcasts + single-unit updates ----------------
        {
            let mut r3_span = comm.span("r3", l as u64);
            let comm: &mut C = &mut r3_span;
            let r3k = r3_pivot(t, l, bi, bj);
            // row phase: panel (i, k=bj) broadcasts A(i,k) along row i
            let mut r3_aik: Option<MinPlusMatrix> = None;
            if t.level(bj) == l && t.related(bi, bj) && bi != bj {
                // source role
                let k = bj;
                let mut cols = r3_row_targets(t, l, bi, k);
                cols.push(k);
                cols.sort_unstable();
                let group: Vec<usize> = cols.iter().map(|&j| rank_of(bi, j)).collect();
                let _ = comm.bcast(
                    &group,
                    rank_of(bi, k),
                    tag(l, 3, k, bi),
                    Some(encode(block, compress)),
                );
            } else if let Some(k) = r3k {
                // receiver role: join the broadcast of panel (bi, k)
                let mut cols = r3_row_targets(t, l, bi, k);
                cols.push(k);
                cols.sort_unstable();
                let group: Vec<usize> = cols.iter().map(|&j| rank_of(bi, j)).collect();
                let data = comm.bcast(&group, rank_of(bi, k), tag(l, 3, k, bi), None);
                let m = decode(size(bi), size(k), data);
                comm.alloc(m.words());
                r3_aik = Some(m);
            }
            // column phase: panel (k=bi, j) broadcasts A(k,j) down column j
            let mut r3_akj: Option<MinPlusMatrix> = None;
            if t.level(bi) == l && t.related(bi, bj) && bi != bj {
                let k = bi;
                let mut rows = r3_row_targets(t, l, bj, k);
                rows.push(k);
                rows.sort_unstable();
                let group: Vec<usize> = rows.iter().map(|&i| rank_of(i, bj)).collect();
                let _ = comm.bcast(
                    &group,
                    rank_of(k, bj),
                    tag(l, 4, k, bj),
                    Some(encode(block, compress)),
                );
            } else if let Some(k) = r3k {
                let mut rows = r3_row_targets(t, l, bj, k);
                rows.push(k);
                rows.sort_unstable();
                let group: Vec<usize> = rows.iter().map(|&i| rank_of(i, bj)).collect();
                let data = comm.bcast(&group, rank_of(k, bj), tag(l, 4, k, bj), None);
                let m = decode(size(k), size(bj), data);
                comm.alloc(m.words());
                r3_akj = Some(m);
            }
            // local update
            if let (Some(aik), Some(akj)) = (&r3_aik, &r3_akj) {
                let ops = gemm(block, aik, akj);
                comm.compute(ops);
            }
            if let Some(a) = r3_aik.take() {
                comm.release(a.words());
            }
            if let Some(a) = r3_akj.take() {
                comm.release(a.words());
            }
        }

        // ---------------- R⁴ ----------------
        if l < h {
            let mut r4_span = comm.span("r4", l as u64);
            let comm: &mut C = &mut r4_span;
            match (opts.r4, directed) {
                (R4Strategy::OneToOne, false) => {
                    r4_one_to_one(comm, layout, t, l, bi, bj, block, compress)
                }
                (R4Strategy::SequentialUnits, false) => {
                    r4_sequential(comm, layout, t, l, bi, bj, block, compress)
                }
                (R4Strategy::OneToOne, true) => {
                    r4_one_to_one_directed(comm, layout, t, l, bi, bj, block, compress)
                }
                (R4Strategy::SequentialUnits, true) => {
                    r4_sequential_directed(comm, layout, t, l, bi, bj, block, compress)
                }
            }
        }

        comm.clocks()
    }
}

/// The Corollary 5.5 one-to-one schedule for `R⁴` at level `l`.
#[allow(clippy::too_many_arguments)]
fn r4_one_to_one<C: Transport>(
    comm: &mut C,
    layout: &SupernodalLayout,
    t: &SchedTree,
    l: u32,
    bi: usize,
    bj: usize,
    block: &mut MinPlusMatrix,
    compress: bool,
) {
    let h = t.height();
    let rank_of = |i: usize, j: usize| layout.rank_of_block(i, j);
    let size = |k: usize| layout.size(k);
    // the unit (if any) this rank executes as worker P_{f,g}
    let my_unit = mapping::units_for_processor(t, l, bi, bj);
    let mut unit_aik: Option<MinPlusMatrix> = None;
    let mut unit_akj: Option<MinPlusMatrix> = None;

    // --- phase G: row distribution — panel (i, k) → workers needing A(i,k)
    {
        // this rank's ops, keyed by the broadcast source block (i, k):
        // one as panel source, one as unit worker (possibly the same op)
        let mut ops: Vec<(usize, usize)> = Vec::new();
        if t.level(bj) == l && t.level(bi) > l && t.related(bi, bj) {
            ops.push((bi, bj));
        }
        if let Some(u) = my_unit {
            ops.push((u.i, u.k));
        }
        ops.sort_unstable();
        ops.dedup();
        for (i, k) in ops {
            let a = t.level(i);
            let g_col = mapping::unit_col(t, l, k);
            let mut members: Vec<usize> = vec![rank_of(i, k)];
            for c in a..=h {
                let f = mapping::unit_row(t, l, a, c);
                members.push(rank_of(f, g_col));
            }
            members.sort_unstable();
            members.dedup();
            let root = rank_of(i, k);
            let payload = (comm.rank() == root).then(|| encode(block, compress));
            let data = comm.bcast(&members, root, tag(l, 5, k, i), payload);
            if my_unit.map(|u| (u.i, u.k)) == Some((i, k)) {
                let m = decode(size(i), size(k), data);
                comm.alloc(m.words());
                unit_aik = Some(m);
            }
        }
    }

    // --- phase H: column distribution — panel (k, j) → workers needing A(k,j)
    {
        let mut ops: Vec<(usize, usize)> = Vec::new();
        if t.level(bi) == l && t.level(bj) > l && t.related(bi, bj) {
            ops.push((bi, bj));
        }
        if let Some(u) = my_unit {
            ops.push((u.k, u.j));
        }
        ops.sort_unstable();
        ops.dedup();
        for (k, j) in ops {
            let c = t.level(j);
            let g_col = mapping::unit_col(t, l, k);
            let mut members: Vec<usize> = vec![rank_of(k, j)];
            for a in (l + 1)..=c {
                let f = mapping::unit_row(t, l, a, c);
                members.push(rank_of(f, g_col));
            }
            members.sort_unstable();
            members.dedup();
            let root = rank_of(k, j);
            let payload = (comm.rank() == root).then(|| encode(block, compress));
            let data = comm.bcast(&members, root, tag(l, 6, k, j), payload);
            if my_unit.map(|u| (u.k, u.j)) == Some((k, j)) {
                let m = decode(size(k), size(j), data);
                comm.alloc(m.words());
                unit_akj = Some(m);
            }
        }
    }

    // --- phase I: workers multiply their unit
    let my_product: Option<MinPlusMatrix> = my_unit.map(|u| {
        let aik = unit_aik.take().expect("row distribution delivered A(i,k)");
        let akj = unit_akj.take().expect("column distribution delivered A(k,j)");
        let mut prod = MinPlusMatrix::empty(size(u.i), size(u.j));
        comm.alloc(prod.words());
        let ops = gemm(&mut prod, &aik, &akj);
        comm.compute(ops);
        comm.release(aik.words());
        comm.release(akj.words());
        prod
    });

    // --- phase J: per-block reduction to P_{i,j}
    {
        // ops: (key = (i, j), contribution)
        let mut ops: Vec<(usize, usize)> = Vec::new();
        if let Some(u) = my_unit {
            ops.push((u.i, u.j));
        }
        if is_r4_upper(t, l, bi, bj) && !ops.contains(&(bi, bj)) {
            ops.push((bi, bj));
        }
        ops.sort_unstable();
        for (i, j) in ops {
            let a = t.level(i);
            let c = t.level(j);
            let f = mapping::unit_row(t, l, a, c);
            let mut members: Vec<usize> =
                t.descendants_at(i, l).map(|k| rank_of(f, mapping::unit_col(t, l, k))).collect();
            members.push(rank_of(i, j));
            members.sort_unstable();
            members.dedup();
            let root = rank_of(i, j);
            let contribution = if my_unit.map(|u| (u.i, u.j)) == Some((i, j)) {
                encode(my_product.as_ref().expect("worker computed its unit"), compress)
            } else {
                // the root (when not itself a worker) contributes ⊕-identity
                if compress {
                    Vec::new()
                } else {
                    vec![f64::INFINITY; size(i) * size(j)]
                }
            };
            // combine handles compressed (empty = all-∞) contributions
            let result = comm.reduce(&members, root, tag(l, 7, i, j), contribution, |acc, inc| {
                if inc.is_empty() {
                    return;
                }
                if acc.is_empty() {
                    *acc = inc.to_vec();
                    return;
                }
                debug_assert_eq!(acc.len(), inc.len(), "reduction shape mismatch");
                for (x, &y) in acc.iter_mut().zip(inc) {
                    if y < *x {
                        *x = y;
                    }
                }
            });
            if comm.rank() == root {
                let reduced = decode(size(i), size(j), result.expect("root gets the reduction"));
                block.min_assign(&reduced);
                comm.compute(reduced.words() as u64);
            }
        }
        if let Some(prod) = my_product {
            comm.release(prod.words());
        }
    }

    // --- phase K: transpose mirror P_{i,j} → P_{j,i}
    if is_r4_upper(t, l, bi, bj) && bi != bj {
        comm.send(rank_of(bj, bi), tag(l, 8, bi, bj), encode(block, compress));
    } else if is_r4_upper(t, l, bj, bi) && bi != bj {
        let data = comm.recv(rank_of(bj, bi), tag(l, 8, bj, bi));
        *block = decode(size(bj), size(bi), data).transposed();
    }
}

/// The §5.2.2 "trivial strategy": `P_{i,j}` pulls all `2q` panels itself.
#[allow(clippy::too_many_arguments)]
fn r4_sequential<C: Transport>(
    comm: &mut C,
    layout: &SupernodalLayout,
    t: &SchedTree,
    l: u32,
    bi: usize,
    bj: usize,
    block: &mut MinPlusMatrix,
    compress: bool,
) {
    let rank_of = |i: usize, j: usize| layout.rank_of_block(i, j);
    let size = |k: usize| layout.size(k);

    // sender roles: column panel (i, k) feeds blocks (i, j), j ∈ {i} ∪ 𝒜(i);
    // row panel (k, j) feeds blocks (i, j), i on the k→j path above level l.
    if t.level(bj) == l && t.level(bi) > l && t.related(bi, bj) {
        let (i, k) = (bi, bj);
        for j in std::iter::once(i).chain(t.ancestors(i)) {
            comm.send(rank_of(i, j), tag(l, 9, k, i), encode(block, compress));
        }
    }
    if t.level(bi) == l && t.level(bj) > l && t.related(bi, bj) {
        let (k, j) = (bi, bj);
        let c = t.level(j);
        for a in (l + 1)..=c {
            let i = t.ancestor_at(k, a);
            comm.send(rank_of(i, j), tag(l, 10, k, j), encode(block, compress));
        }
    }
    // receiver role: upper R⁴ block pulls its 2q panels, pivot by pivot
    if is_r4_upper(t, l, bi, bj) {
        for k in t.descendants_at(bi, l) {
            let aik = decode(size(bi), size(k), comm.recv(rank_of(bi, k), tag(l, 9, k, bi)));
            comm.alloc(aik.words());
            let akj = decode(size(k), size(bj), comm.recv(rank_of(k, bj), tag(l, 10, k, bj)));
            comm.alloc(akj.words());
            let ops = gemm(block, &aik, &akj);
            comm.compute(ops);
            comm.release(aik.words());
            comm.release(akj.words());
        }
    }
    // transpose mirror, as in the one-to-one schedule
    if is_r4_upper(t, l, bi, bj) && bi != bj {
        comm.send(rank_of(bj, bi), tag(l, 8, bi, bj), encode(block, compress));
    } else if is_r4_upper(t, l, bj, bi) && bi != bj {
        let data = comm.recv(rank_of(bj, bi), tag(l, 8, bj, bi));
        *block = decode(size(bj), size(bi), data).transposed();
    }
}

/// Worker rows whose units involve ancestor `x` (as block row *or* block
/// column) at level `l` — the directed distribution target set.
fn dir_unit_rows(t: &SchedTree, l: u32, x: usize) -> Vec<usize> {
    let h = t.height();
    let lx = t.level(x);
    let mut rows: Vec<usize> = (lx..=h).map(|c| mapping::unit_row(t, l, lx, c)).collect();
    rows.extend(((l + 1)..=lx).map(|a| mapping::unit_row(t, l, a, lx)));
    rows.sort_unstable();
    rows.dedup();
    rows
}

/// Is `(i, j)` *any* `R⁴` block at level `l` (both endpoints above `l`,
/// related — either orientation)?
fn is_r4_block(t: &SchedTree, l: u32, i: usize, j: usize) -> bool {
    t.level(i) > l && t.level(j) > l && t.related(i, j)
}

/// Directed `R⁴` with the one-to-one placement: each worker `P_{f,g}`
/// computes **both** orientations of its unit
/// (`A(i,k) ⊗ A(k,j)` and `A(j,k) ⊗ A(k,i)`) and feeds two reductions —
/// no transpose mirror exists for asymmetric weights. Costs stay within
/// 2× of the undirected schedule, same asymptotics.
#[allow(clippy::too_many_arguments)]
fn r4_one_to_one_directed<C: Transport>(
    comm: &mut C,
    layout: &SupernodalLayout,
    t: &SchedTree,
    l: u32,
    bi: usize,
    bj: usize,
    block: &mut MinPlusMatrix,
    compress: bool,
) {
    let rank_of = |i: usize, j: usize| layout.rank_of_block(i, j);
    let size = |k: usize| layout.size(k);
    let my_unit = mapping::units_for_processor(t, l, bi, bj);
    // received operands, keyed by block coordinates
    let mut col_panels: std::collections::BTreeMap<(usize, usize), MinPlusMatrix> =
        std::collections::BTreeMap::new();
    let mut row_panels: std::collections::BTreeMap<(usize, usize), MinPlusMatrix> =
        std::collections::BTreeMap::new();

    // --- phase G: column panels A(x, k) to every worker touching x
    {
        let mut ops: Vec<(usize, usize)> = Vec::new();
        if t.level(bj) == l && t.level(bi) > l && t.related(bi, bj) {
            ops.push((bi, bj));
        }
        if let Some(u) = my_unit {
            ops.push((u.i, u.k));
            ops.push((u.j, u.k));
        }
        ops.sort_unstable();
        ops.dedup();
        for (x, k) in ops {
            let g_col = mapping::unit_col(t, l, k);
            let mut members: Vec<usize> = vec![rank_of(x, k)];
            members.extend(dir_unit_rows(t, l, x).into_iter().map(|f| rank_of(f, g_col)));
            members.sort_unstable();
            members.dedup();
            let root = rank_of(x, k);
            let payload = (comm.rank() == root).then(|| encode(block, compress));
            let data = comm.bcast(&members, root, tag(l, 5, k, x), payload);
            if my_unit.is_some_and(|u| (u.i == x || u.j == x) && u.k == k) {
                let m = decode(size(x), size(k), data);
                comm.alloc(m.words());
                col_panels.insert((x, k), m);
            }
        }
    }
    // --- phase H: row panels A(k, x)
    {
        let mut ops: Vec<(usize, usize)> = Vec::new();
        if t.level(bi) == l && t.level(bj) > l && t.related(bi, bj) {
            ops.push((bi, bj));
        }
        if let Some(u) = my_unit {
            ops.push((u.k, u.i));
            ops.push((u.k, u.j));
        }
        ops.sort_unstable();
        ops.dedup();
        for (k, x) in ops {
            let g_col = mapping::unit_col(t, l, k);
            let mut members: Vec<usize> = vec![rank_of(k, x)];
            members.extend(dir_unit_rows(t, l, x).into_iter().map(|f| rank_of(f, g_col)));
            members.sort_unstable();
            members.dedup();
            let root = rank_of(k, x);
            let payload = (comm.rank() == root).then(|| encode(block, compress));
            let data = comm.bcast(&members, root, tag(l, 6, k, x), payload);
            if my_unit.is_some_and(|u| (u.i == x || u.j == x) && u.k == k) {
                let m = decode(size(k), size(x), data);
                comm.alloc(m.words());
                row_panels.insert((k, x), m);
            }
        }
    }
    // --- phase I: both oriented products
    let my_products: Option<(MinPlusMatrix, MinPlusMatrix)> = my_unit.map(|u| {
        let aik = &col_panels[&(u.i, u.k)];
        let akj = &row_panels[&(u.k, u.j)];
        let mut fwd = MinPlusMatrix::empty(size(u.i), size(u.j));
        comm.alloc(fwd.words());
        let mut ops = gemm(&mut fwd, aik, akj);
        let ajk = &col_panels[&(u.j, u.k)];
        let aki = &row_panels[&(u.k, u.i)];
        let mut bwd = MinPlusMatrix::empty(size(u.j), size(u.i));
        comm.alloc(bwd.words());
        ops += gemm(&mut bwd, ajk, aki);
        comm.compute(ops);
        (fwd, bwd)
    });
    for (_, m) in col_panels.into_iter().chain(row_panels) {
        comm.release(m.words());
    }

    // --- phase J: two reductions per unit pair (forward to P_{i,j},
    //     backward to P_{j,i}); diagonal blocks reduce once
    {
        let mut ops: Vec<(usize, usize)> = Vec::new();
        if let Some(u) = my_unit {
            ops.push((u.i, u.j));
            ops.push((u.j, u.i));
        }
        if is_r4_block(t, l, bi, bj) {
            ops.push((bi, bj));
        }
        ops.sort_unstable();
        ops.dedup();
        for (x, y) in ops {
            // upper orientation of the pair decides the worker row
            let (ui, uj) = if t.level(x) <= t.level(y) { (x, y) } else { (y, x) };
            let f = mapping::unit_row(t, l, t.level(ui), t.level(uj));
            let mut members: Vec<usize> =
                t.descendants_at(ui, l).map(|k| rank_of(f, mapping::unit_col(t, l, k))).collect();
            members.push(rank_of(x, y));
            members.sort_unstable();
            members.dedup();
            let root = rank_of(x, y);
            let contribution = match (&my_products, my_unit) {
                (Some((fwd, _)), Some(u)) if (u.i, u.j) == (x, y) => encode(fwd, compress),
                (Some((_, bwd)), Some(u)) if (u.j, u.i) == (x, y) && u.i != u.j => {
                    encode(bwd, compress)
                }
                _ => {
                    if compress {
                        Vec::new()
                    } else {
                        vec![f64::INFINITY; size(x) * size(y)]
                    }
                }
            };
            let result = comm.reduce(&members, root, tag(l, 7, x, y), contribution, |acc, inc| {
                if inc.is_empty() {
                    return;
                }
                if acc.is_empty() {
                    *acc = inc.to_vec();
                    return;
                }
                for (a, &b) in acc.iter_mut().zip(inc) {
                    if b < *a {
                        *a = b;
                    }
                }
            });
            if comm.rank() == root {
                let reduced = decode(size(x), size(y), result.expect("root gets the reduction"));
                block.min_assign(&reduced);
                comm.compute(reduced.words() as u64);
            }
        }
        if let Some((fwd, bwd)) = my_products {
            comm.release(fwd.words());
            comm.release(bwd.words());
        }
    }
}

/// Directed `R⁴`, trivial strategy: every `R⁴` block (both orientations)
/// pulls its `2q` panels itself. Panel `(x, k)` feeds blocks `(x, y)` for
/// every `y ∈ 𝒜(k)` above level `l`; panel `(k, x)` feeds `(y, x)`.
#[allow(clippy::too_many_arguments)]
fn r4_sequential_directed<C: Transport>(
    comm: &mut C,
    layout: &SupernodalLayout,
    t: &SchedTree,
    l: u32,
    bi: usize,
    bj: usize,
    block: &mut MinPlusMatrix,
    compress: bool,
) {
    let rank_of = |i: usize, j: usize| layout.rank_of_block(i, j);
    let size = |k: usize| layout.size(k);

    if t.level(bj) == l && t.level(bi) > l && t.related(bi, bj) {
        let (x, k) = (bi, bj);
        for y in t.ancestors(k) {
            comm.send(rank_of(x, y), tag(l, 9, k, x), encode(block, compress));
        }
    }
    if t.level(bi) == l && t.level(bj) > l && t.related(bi, bj) {
        let (k, x) = (bi, bj);
        for y in t.ancestors(k) {
            comm.send(rank_of(y, x), tag(l, 10, k, x), encode(block, compress));
        }
    }
    if is_r4_block(t, l, bi, bj) {
        // pivots: level-l descendants of the lower-level endpoint
        let lower = if t.level(bi) <= t.level(bj) { bi } else { bj };
        for k in t.descendants_at(lower, l) {
            let aik = decode(size(bi), size(k), comm.recv(rank_of(bi, k), tag(l, 9, k, bi)));
            comm.alloc(aik.words());
            let akj = decode(size(k), size(bj), comm.recv(rank_of(k, bj), tag(l, 10, k, bj)));
            comm.alloc(akj.words());
            let ops = gemm(block, &aik, &akj);
            comm.compute(ops);
            comm.release(aik.words());
            comm.release(akj.words());
        }
    }
}

/// Runs 2D-SPARSE-APSP on the simulated machine with default options.
///
/// `g_perm` must already be permuted into the eliminated ordering described
/// by `layout`. Each rank initializes its own block locally (the §3.1 model
/// assumes the matrix is pre-distributed, as on a parallel filesystem), so
/// the report covers the algorithm's communication only.
pub fn sparse2d(layout: &SupernodalLayout, g_perm: &Csr, strategy: R4Strategy) -> Sparse2dResult {
    sparse2d_with(layout, g_perm, &Sparse2dOptions { r4: strategy, ..Default::default() })
}

/// Runs 2D-SPARSE-APSP with explicit [`Sparse2dOptions`].
pub fn sparse2d_with(
    layout: &SupernodalLayout,
    g_perm: &Csr,
    opts: &Sparse2dOptions,
) -> Sparse2dResult {
    assert_eq!(g_perm.n(), layout.n(), "layout does not match the graph");
    let init = |i: usize, j: usize| layout.extract_block(g_perm, i, j);
    run_machine(layout, &init, opts, false)
}

/// Runs **directed** 2D-SPARSE-APSP: asymmetric weights over a symmetric
/// pattern (`dg_perm` already permuted into the eliminated ordering of the
/// pattern's nested dissection). The schedule is identical except in `R⁴`,
/// where both block orientations are computed explicitly instead of
/// mirrored — within 2× of the undirected message costs.
pub fn sparse2d_directed(
    layout: &SupernodalLayout,
    dg_perm: &apsp_graph::DiCsr,
    opts: &Sparse2dOptions,
) -> Sparse2dResult {
    assert_eq!(dg_perm.n(), layout.n(), "layout does not match the graph");
    let init = |i: usize, j: usize| layout.extract_block_directed(dg_perm, i, j);
    run_machine(layout, &init, opts, true)
}

/// Runs 2D-SPARSE-APSP on the **native** shared-memory backend: `p` OS
/// threads over plain channels, no §3.1 cost clocks. The schedule — and
/// therefore the distance matrix, bit for bit — is identical to the
/// simulated run; the returned report carries no cost counters (all
/// zeros). Use this for wall-clock measurements of the actual message
/// pattern.
pub fn sparse2d_native(
    layout: &SupernodalLayout,
    g_perm: &Csr,
    opts: &Sparse2dOptions,
) -> Sparse2dResult {
    assert_eq!(g_perm.n(), layout.n(), "layout does not match the graph");
    let _wall = apsp_metrics::time_phase("solve-sparse2d-native");
    let init = |i: usize, j: usize| layout.extract_block(g_perm, i, j);
    let p = layout.p();
    let (outputs, report) =
        NativeMachine::run(p, |comm| rank_program(comm, layout, &init, opts, false));
    assemble(layout, outputs, report)
}

/// Native-backend variant of [`sparse2d_directed`] — same dual-orientation
/// `R⁴` schedule, executed on OS threads without cost clocks.
pub fn sparse2d_native_directed(
    layout: &SupernodalLayout,
    dg_perm: &apsp_graph::DiCsr,
    opts: &Sparse2dOptions,
) -> Sparse2dResult {
    assert_eq!(dg_perm.n(), layout.n(), "layout does not match the graph");
    let _wall = apsp_metrics::time_phase("solve-sparse2d-native");
    let init = |i: usize, j: usize| layout.extract_block_directed(dg_perm, i, j);
    let p = layout.p();
    let (outputs, report) =
        NativeMachine::run(p, |comm| rank_program(comm, layout, &init, opts, true));
    assemble(layout, outputs, report)
}

/// Like [`sparse2d_with`], additionally returning every rank's sent-message
/// trace (src, dst, words, tag) — the schedule-audit hook. Tags decode as
/// `(level, phase, k, aux)` via the internal `tag` layout: level in bits
/// 56.., phase in 48.., pivot in 24...
pub fn sparse2d_traced(
    layout: &SupernodalLayout,
    g_perm: &Csr,
    opts: &Sparse2dOptions,
) -> (Sparse2dResult, Vec<Vec<apsp_simnet::TraceEvent>>) {
    assert_eq!(g_perm.n(), layout.n(), "layout does not match the graph");
    let init = |i: usize, j: usize| layout.extract_block(g_perm, i, j);
    let p = layout.p();
    let (outputs, report, traces) =
        Machine::run_traced(p, |comm| rank_program(comm, layout, &init, opts, false));
    (assemble(layout, outputs, report), traces)
}

/// Like [`sparse2d_with`], additionally profiling the run: the returned
/// result's `report.profile` carries per-rank span ledgers (levels, with
/// nested `R¹`–`R⁴` phase spans), the p×p communication matrix, and the
/// event stream — ready for [`apsp_simnet::Profile::chrome_trace_json`]
/// or [`apsp_simnet::RunReport::phase_breakdown`].
pub fn sparse2d_profiled(
    layout: &SupernodalLayout,
    g_perm: &Csr,
    opts: &Sparse2dOptions,
) -> Sparse2dResult {
    assert_eq!(g_perm.n(), layout.n(), "layout does not match the graph");
    let init = |i: usize, j: usize| layout.extract_block(g_perm, i, j);
    run_machine_profiled(layout, &init, opts, false)
}

/// Profiled variant of [`sparse2d_directed`] — same span ledger as
/// [`sparse2d_profiled`], over the directed schedule.
pub fn sparse2d_directed_profiled(
    layout: &SupernodalLayout,
    dg_perm: &apsp_graph::DiCsr,
    opts: &Sparse2dOptions,
) -> Sparse2dResult {
    assert_eq!(dg_perm.n(), layout.n(), "layout does not match the graph");
    let init = |i: usize, j: usize| layout.extract_block_directed(dg_perm, i, j);
    run_machine_profiled(layout, &init, opts, true)
}

/// Verifies the 2D-SPARSE-APSP communication schedule for this layout:
/// every rank's comm script is recorded for the static lint (send/recv
/// matching, tag freshness across phases, collective ordering, phase
/// quiescence at every `commit_phase`, span balance) and, for `p ≤`
/// [`apsp_verify::MAX_EXPLORE_P`], wildcard delivery schedules are
/// explored for deadlocks and order-sensitive nondeterminism. The digest
/// covers every rank's final block. Recording never touches the §3.1
/// clocks, so a verified schedule's plain run is byte-identical to an
/// unverified one.
pub fn sparse2d_verify(
    layout: &SupernodalLayout,
    g_perm: &Csr,
    opts: &Sparse2dOptions,
    vopts: &apsp_verify::VerifyOptions,
) -> apsp_verify::VerifyReport {
    assert_eq!(g_perm.n(), layout.n(), "layout does not match the graph");
    let init = |i: usize, j: usize| layout.extract_block(g_perm, i, j);
    let p = layout.p();
    apsp_verify::verify_program(
        p,
        vopts,
        |comm| rank_program(comm, layout, &init, opts, false).0,
        apsp_verify::digest_rows,
    )
}

/// Native-backend variant of [`sparse2d_verify`]: the same rank program
/// records the same logical comm script over real OS threads and
/// channels, and the layer-1 static lint checks it — send/recv pairing,
/// tag freshness, collective order, checkpoint quiescence and span
/// balance are pinned on both machines. The layer-2 schedule explorer
/// needs the governed simulator and does not run here (see
/// `docs/VERIFICATION.md`).
pub fn sparse2d_native_verify(
    layout: &SupernodalLayout,
    g_perm: &Csr,
    opts: &Sparse2dOptions,
) -> apsp_verify::VerifyReport {
    assert_eq!(g_perm.n(), layout.n(), "layout does not match the graph");
    let init = |i: usize, j: usize| layout.extract_block(g_perm, i, j);
    let p = layout.p();
    apsp_verify::lint_recorded_outcome(
        p,
        NativeMachine::run_recorded(p, |comm| rank_program(comm, layout, &init, opts, false)),
    )
}

/// Like [`sparse2d_with`], additionally returning every rank's recorded
/// comm script — the cost-model auditor's sampling hook (`apsp audit`):
/// [`apsp_simnet::phase_totals`] turns the scripts into per-phase
/// (`level`, `r1`–`r4`) ledgers whose growth exponents are fitted
/// against Theorems 5.7/5.10. Recording never touches the §3.1 clocks,
/// so the embedded report is byte-identical to a plain run's.
pub fn sparse2d_recorded(
    layout: &SupernodalLayout,
    g_perm: &Csr,
    opts: &Sparse2dOptions,
) -> (Sparse2dResult, Vec<Vec<apsp_simnet::CommEvent>>) {
    assert_eq!(g_perm.n(), layout.n(), "layout does not match the graph");
    let init = |i: usize, j: usize| layout.extract_block(g_perm, i, j);
    let p = layout.p();
    let (outputs, report, scripts) =
        Machine::run_recorded(p, |comm| rank_program(comm, layout, &init, opts, false))
            .expect("fault-free recorded launch cannot fail");
    (assemble(layout, outputs, report), scripts)
}

/// Like [`sparse2d_with`], under a deterministic fault plan: the schedule
/// recovers (or fails loudly with a [`MachineError`]) and the run reports
/// its fault history alongside the result.
pub fn sparse2d_faulty(
    layout: &SupernodalLayout,
    g_perm: &Csr,
    opts: &Sparse2dOptions,
    plan: &FaultPlan,
    profiled: bool,
) -> Result<(Sparse2dResult, FaultSummary), MachineError> {
    assert_eq!(g_perm.n(), layout.n(), "layout does not match the graph");
    let init = |i: usize, j: usize| layout.extract_block(g_perm, i, j);
    let how = if profiled { Launch::Profiled } else { Launch::Plain };
    run_machine_launch(layout, &init, opts, false, how.with_faults(plan))
        .map(|(res, faults)| (res, faults.expect("faulty run carries a summary")))
}

/// Like [`sparse2d_faulty`], but supervised: every elimination level is a
/// checkpointable phase, and killed ranks / dead links roll back to the
/// last complete level and re-execute under `policy` instead of aborting
/// the run — the checkpoint cadence therefore follows the e-tree height,
/// not the (much finer) message schedule.
pub fn sparse2d_recovering(
    layout: &SupernodalLayout,
    g_perm: &Csr,
    opts: &Sparse2dOptions,
    plan: &FaultPlan,
    policy: RecoveryPolicy,
    profiled: bool,
) -> Result<(Sparse2dResult, FaultSummary, RecoveryReport), MachineError> {
    assert_eq!(g_perm.n(), layout.n(), "layout does not match the graph");
    let init = |i: usize, j: usize| layout.extract_block(g_perm, i, j);
    let p = layout.p();
    let (outputs, report, faults, recovery) =
        Machine::launch_recovering(p, plan, policy, profiled, |comm| {
            rank_program(comm, layout, &init, opts, false)
        })?;
    Ok((assemble(layout, outputs, report), faults, recovery))
}

/// [`sparse2d_faulty`] on the **native** backend: the same seeded fault
/// plan injected into real channel traffic (OS threads, no cost clocks),
/// with `kill=` rules killing actual rank threads. Same plan ⇒ the same
/// deterministic fault trajectory; recovered runs are bit-identical to
/// [`sparse2d_native`].
pub fn sparse2d_native_faulty(
    layout: &SupernodalLayout,
    g_perm: &Csr,
    opts: &Sparse2dOptions,
    plan: &FaultPlan,
) -> Result<(Sparse2dResult, FaultSummary), MachineError> {
    assert_eq!(g_perm.n(), layout.n(), "layout does not match the graph");
    let _wall = apsp_metrics::time_phase("solve-sparse2d-native");
    let init = |i: usize, j: usize| layout.extract_block(g_perm, i, j);
    let p = layout.p();
    let (outputs, report, faults) = NativeMachine::launch_faulty(p, plan, |comm| {
        rank_program(comm, layout, &init, opts, false)
    })?;
    Ok((assemble(layout, outputs, report), faults))
}

/// [`sparse2d_recovering`] on the **native** backend: per-level
/// checkpoints into the shared snapshot store, thread-level kill and
/// respawn, spare-thread takeover for permanently dead ranks — the
/// simulator's supervisor semantics over real OS threads.
pub fn sparse2d_native_recovering(
    layout: &SupernodalLayout,
    g_perm: &Csr,
    opts: &Sparse2dOptions,
    plan: &FaultPlan,
    policy: RecoveryPolicy,
) -> Result<(Sparse2dResult, FaultSummary, RecoveryReport), MachineError> {
    assert_eq!(g_perm.n(), layout.n(), "layout does not match the graph");
    let _wall = apsp_metrics::time_phase("solve-sparse2d-native");
    let init = |i: usize, j: usize| layout.extract_block(g_perm, i, j);
    let p = layout.p();
    let (outputs, report, faults, recovery) =
        NativeMachine::launch_recovering(p, plan, policy, |comm| {
            rank_program(comm, layout, &init, opts, false)
        })?;
    Ok((assemble(layout, outputs, report), faults, recovery))
}

fn run_machine(
    layout: &SupernodalLayout,
    init: &(dyn Fn(usize, usize) -> MinPlusMatrix + Sync),
    opts: &Sparse2dOptions,
    directed: bool,
) -> Sparse2dResult {
    run_machine_launch(layout, init, opts, directed, Launch::Plain)
        .expect("fault-free launch cannot fail")
        .0
}

fn run_machine_profiled(
    layout: &SupernodalLayout,
    init: &(dyn Fn(usize, usize) -> MinPlusMatrix + Sync),
    opts: &Sparse2dOptions,
    directed: bool,
) -> Sparse2dResult {
    run_machine_launch(layout, init, opts, directed, Launch::Profiled)
        .expect("fault-free launch cannot fail")
        .0
}

fn run_machine_launch(
    layout: &SupernodalLayout,
    init: &(dyn Fn(usize, usize) -> MinPlusMatrix + Sync),
    opts: &Sparse2dOptions,
    directed: bool,
    how: Launch<'_>,
) -> Result<(Sparse2dResult, Option<FaultSummary>), MachineError> {
    let _wall = apsp_metrics::time_phase("solve-sparse2d");
    let p = layout.p();
    let (outputs, report, faults) =
        Machine::launch(p, how, |comm| rank_program(comm, layout, init, opts, directed))?;
    Ok((assemble(layout, outputs, report), faults))
}

fn assemble(
    layout: &SupernodalLayout,
    outputs: Vec<(Vec<f64>, Vec<Clocks>)>,
    report: RunReport,
) -> Sparse2dResult {
    let h = layout.tree().height() as usize;
    // per-level critical clocks: max over ranks of the cumulative snapshot
    let mut level_clocks = vec![Clocks::default(); h];
    for (_, clocks) in &outputs {
        for (lvl, c) in clocks.iter().enumerate() {
            level_clocks[lvl].merge_max(c);
        }
    }
    let blocks: Vec<MinPlusMatrix> = outputs
        .into_iter()
        .enumerate()
        .map(|(rank, (data, _))| {
            let (i, j) = layout.block_of_rank(rank);
            MinPlusMatrix::from_raw(layout.size(i), layout.size(j), data)
        })
        .collect();
    Sparse2dResult { dist_eliminated: layout.assemble_dense(&blocks), report, level_clocks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::generators::{self, WeightKind};
    use apsp_graph::oracle;
    use apsp_partition::{grid_nd, nested_dissection, NdOptions};

    fn check_with(
        g: &Csr,
        nd: &apsp_partition::NdOrdering,
        opts: &Sparse2dOptions,
    ) -> Sparse2dResult {
        let layout = SupernodalLayout::from_ordering(nd);
        let gp = g.permuted(&nd.perm);
        let result = sparse2d_with(&layout, &gp, opts);
        let dist = SupernodalLayout::unpermute(&result.dist_eliminated, &nd.perm);
        let reference = oracle::apsp_dijkstra(g);
        if let Some((i, j, a, b)) = dist.first_mismatch(&reference, 1e-9) {
            panic!("mismatch at ({i},{j}): got {a}, expected {b}");
        }
        result
    }

    fn check(g: &Csr, nd: &apsp_partition::NdOrdering, strategy: R4Strategy) -> RunReport {
        check_with(g, nd, &Sparse2dOptions { r4: strategy, ..Default::default() }).report
    }

    #[test]
    fn fig1_graph_on_9_ranks() {
        let g = generators::paper_fig1();
        let nd = nested_dissection(&g, 2, &NdOptions::default());
        let report = check(&g, &nd, R4Strategy::OneToOne);
        assert!(report.total_messages() > 0);
    }

    #[test]
    fn grid_on_9_ranks() {
        let g = generators::grid2d(6, 6, WeightKind::Integer { max: 7 }, 1);
        let nd = grid_nd(6, 6, 2);
        check(&g, &nd, R4Strategy::OneToOne);
    }

    #[test]
    fn grid_on_49_ranks() {
        let g = generators::grid2d(9, 9, WeightKind::Integer { max: 7 }, 2);
        let nd = grid_nd(9, 9, 3);
        check(&g, &nd, R4Strategy::OneToOne);
    }

    #[test]
    fn grid_on_225_ranks() {
        let g = generators::grid2d(12, 12, WeightKind::Integer { max: 7 }, 3);
        let nd = grid_nd(12, 12, 4);
        check(&g, &nd, R4Strategy::OneToOne);
    }

    #[test]
    fn multilevel_ordering_on_49_ranks() {
        let g = generators::connected_gnp(60, 0.05, WeightKind::Uniform { lo: 0.2, hi: 2.0 }, 9);
        let nd = nested_dissection(&g, 3, &NdOptions::default());
        check(&g, &nd, R4Strategy::OneToOne);
    }

    #[test]
    fn sequential_units_strategy_matches() {
        let g = generators::grid2d(8, 8, WeightKind::Integer { max: 5 }, 4);
        let nd = grid_nd(8, 8, 3);
        check(&g, &nd, R4Strategy::SequentialUnits);
    }

    #[test]
    fn single_rank_degenerate() {
        let g = generators::path(6, WeightKind::Unit, 0);
        let nd = nested_dissection(&g, 1, &NdOptions::default());
        let report = check(&g, &nd, R4Strategy::OneToOne);
        assert_eq!(report.total_messages(), 0, "p = 1 needs no communication");
    }

    #[test]
    fn disconnected_graph() {
        let mut b = apsp_graph::GraphBuilder::new(12);
        for i in 0..5 {
            b.add_edge(i, i + 1, 1.0);
        }
        for i in 6..11 {
            b.add_edge(i, i + 1, 2.0);
        }
        let g = b.build();
        let nd = nested_dissection(&g, 2, &NdOptions::default());
        check(&g, &nd, R4Strategy::OneToOne);
    }

    #[test]
    fn one_to_one_beats_sequential_latency() {
        // the gap is asymptotic in 2^{h−l} vs log p, so it needs a tall
        // tree: h = 5 → 961 ranks, max q = 16 units per block
        let g = generators::grid2d(16, 16, WeightKind::Unit, 5);
        let nd = grid_nd(16, 16, 5);
        let layout = SupernodalLayout::from_ordering(&nd);
        let gp = g.permuted(&nd.perm);
        let fast = sparse2d(&layout, &gp, R4Strategy::OneToOne).report;
        let slow = sparse2d(&layout, &gp, R4Strategy::SequentialUnits).report;
        assert!(
            fast.critical_latency() < slow.critical_latency(),
            "one-to-one {} vs sequential {}",
            fast.critical_latency(),
            slow.critical_latency()
        );
        assert!(fast.critical_bandwidth() < slow.critical_bandwidth());
    }

    fn random_digraph(base: &Csr, seed: u64) -> apsp_graph::DiCsr {
        // independent weights per direction, some one-way arcs
        let mut state = seed | 1;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as f64
        };
        let mut b = apsp_graph::DiGraphBuilder::new(base.n());
        for (u, v, _) in base.edges() {
            let fw = 1.0 + rnd() / 100.0;
            if rnd() < 850.0 {
                b.add_arc(u, v, fw);
            }
            if rnd() < 850.0 {
                b.add_arc(v, u, 1.0 + rnd() / 100.0);
            }
            // guarantee the pattern pair exists even if both draws failed
            b.add_arc(u, v, fw.max(900.0));
        }
        b.build()
    }

    fn check_directed(
        base: &Csr,
        nd: &apsp_partition::NdOrdering,
        opts: &Sparse2dOptions,
        seed: u64,
    ) {
        let dg = random_digraph(base, seed);
        let layout = SupernodalLayout::from_ordering(nd);
        let dgp = dg.permuted(&nd.perm);
        let result = sparse2d_directed(&layout, &dgp, opts);
        // un-permute
        let n = base.n();
        let mut dist = apsp_graph::DenseDist::unconnected(n);
        for i in 0..n {
            for j in 0..n {
                dist.set(i, j, result.dist_eliminated.get(nd.perm.to_new(i), nd.perm.to_new(j)));
            }
        }
        let reference = apsp_graph::digraph::apsp_dijkstra_directed(&dg);
        if let Some((i, j, a, b)) = dist.first_mismatch(&reference, 1e-9) {
            panic!("directed mismatch at ({i},{j}): got {a}, expected {b}");
        }
    }

    #[test]
    fn directed_grid_on_9_ranks() {
        let base = generators::grid2d(6, 6, WeightKind::Unit, 0);
        let nd = grid_nd(6, 6, 2);
        check_directed(&base, &nd, &Sparse2dOptions::default(), 1);
    }

    #[test]
    fn directed_grid_on_49_ranks() {
        let base = generators::grid2d(9, 9, WeightKind::Unit, 0);
        let nd = grid_nd(9, 9, 3);
        check_directed(&base, &nd, &Sparse2dOptions::default(), 2);
    }

    #[test]
    fn directed_multilevel_ordering() {
        let base = generators::connected_gnp(40, 0.06, WeightKind::Unit, 4);
        let nd = nested_dissection(&base, 3, &NdOptions::default());
        check_directed(&base, &nd, &Sparse2dOptions::default(), 3);
    }

    #[test]
    fn directed_sequential_strategy() {
        let base = generators::grid2d(8, 8, WeightKind::Unit, 0);
        let nd = grid_nd(8, 8, 3);
        check_directed(
            &base,
            &nd,
            &Sparse2dOptions { r4: R4Strategy::SequentialUnits, ..Default::default() },
            4,
        );
    }

    #[test]
    fn directed_with_compression() {
        let base = generators::path(30, WeightKind::Unit, 0);
        let nd = nested_dissection(&base, 3, &NdOptions::default());
        check_directed(
            &base,
            &nd,
            &Sparse2dOptions { compress_empty: true, ..Default::default() },
            5,
        );
    }

    #[test]
    fn directed_agrees_with_undirected_on_symmetric_weights() {
        let g = generators::grid2d(8, 8, WeightKind::Integer { max: 6 }, 7);
        let nd = grid_nd(8, 8, 3);
        let layout = SupernodalLayout::from_ordering(&nd);
        let gp = g.permuted(&nd.perm);
        let und = sparse2d(&layout, &gp, R4Strategy::OneToOne);
        let dg = apsp_graph::DiCsr::from_undirected(&g).permuted(&nd.perm);
        let dir = sparse2d_directed(&layout, &dg, &Sparse2dOptions::default());
        assert!(und.dist_eliminated.first_mismatch(&dir.dist_eliminated, 1e-9).is_none());
        // directed costs stay within ~2x of the undirected schedule
        assert!(dir.report.critical_bandwidth() <= 3 * und.report.critical_bandwidth());
    }

    #[test]
    fn mostly_empty_supernodes_on_225_ranks() {
        // a 10-vertex path on a height-4 tree: most of the 15 supernodes
        // are empty, blocks of size 0 flow through every phase
        let g = generators::path(10, WeightKind::Integer { max: 3 }, 1);
        let nd = nested_dissection(&g, 4, &NdOptions::default());
        assert!(nd.supernode_sizes.iter().filter(|&&s| s == 0).count() > 0);
        check(&g, &nd, R4Strategy::OneToOne);
        check(&g, &nd, R4Strategy::SequentialUnits);
    }

    #[test]
    fn reports_are_deterministic() {
        let g = generators::grid2d(6, 6, WeightKind::Integer { max: 3 }, 8);
        let nd = grid_nd(6, 6, 2);
        let layout = SupernodalLayout::from_ordering(&nd);
        let gp = g.permuted(&nd.perm);
        let a = sparse2d(&layout, &gp, R4Strategy::OneToOne).report;
        let b = sparse2d(&layout, &gp, R4Strategy::OneToOne).report;
        assert_eq!(a.critical_latency(), b.critical_latency());
        assert_eq!(a.critical_bandwidth(), b.critical_bandwidth());
        assert_eq!(a.total_words(), b.total_words());
    }

    #[test]
    fn level_costs_cover_the_total_lemma_5_6() {
        let g = generators::grid2d(12, 12, WeightKind::Unit, 0);
        let nd = grid_nd(12, 12, 4);
        let result = check_with(&g, &nd, &Sparse2dOptions::default());
        let per_level = result.level_costs();
        assert_eq!(per_level.len(), 4);
        // per-level deltas sum to the totals
        let sum_l: u64 = per_level.iter().map(|&(l, _)| l).sum();
        let sum_b: u64 = per_level.iter().map(|&(_, b)| b).sum();
        assert_eq!(sum_l, result.report.critical_latency());
        assert_eq!(sum_b, result.report.critical_bandwidth());
        // Lemma 5.6: every level costs O(log p) messages
        let log_p = (225f64).log2();
        for (lvl, &(lat, _)) in per_level.iter().enumerate() {
            assert!((lat as f64) <= 4.0 * log_p, "level {}: L_l = {lat} exceeds 4·log p", lvl + 1);
        }
    }

    #[test]
    fn compressed_empty_blocks_save_bandwidth_not_correctness() {
        // a path: extremely sparse, most blocks stay all-∞ for a while
        let g = generators::path(40, WeightKind::Integer { max: 5 }, 3);
        let nd = nested_dissection(&g, 3, &NdOptions::default());
        let plain = check_with(&g, &nd, &Sparse2dOptions::default());
        let compressed =
            check_with(&g, &nd, &Sparse2dOptions { compress_empty: true, ..Default::default() });
        assert!(
            compressed.report.total_words() < plain.report.total_words(),
            "compression should cut volume: {} vs {}",
            compressed.report.total_words(),
            plain.report.total_words()
        );
        // latency is the same schedule
        assert_eq!(compressed.report.total_messages(), plain.report.total_messages());
    }

    #[test]
    fn compression_works_with_sequential_strategy_too() {
        let g = generators::path(30, WeightKind::Unit, 0);
        let nd = nested_dissection(&g, 3, &NdOptions::default());
        check_with(
            &g,
            &nd,
            &Sparse2dOptions { r4: R4Strategy::SequentialUnits, compress_empty: true },
        );
    }
}
