//! 2D-DC-APSP (Solomonik et al. \[24\]) — the paper's dense comparator.
//!
//! Divide-and-conquer APSP over a **block-cyclic** layout:
//!
//! ```text
//! APSP(A) = | APSP(A₁₁)                 |  A₁₂ ← A₁₁ ⊗ A₁₂
//!           | A₂₁ ← A₂₁ ⊗ A₁₁           |  A₂₂ ⊕= A₂₁ ⊗ A₁₂
//!           | APSP(A₂₂)                 |  A₁₂ ← A₁₂ ⊗ A₂₂ ; A₂₁ ← A₂₂ ⊗ A₂₁
//!           | A₁₁ ⊕= A₁₂ ⊗ A₂₁          |
//! ```
//!
//! The matrix is padded and cut into a `T × T` grid of `ts × ts` tiles with
//! `T = √p · 2^depth`; tile `(I, J)` lives on rank `(I mod √p, J mod √p)`,
//! so every quadrant of every recursion level spreads across the whole
//! grid — the block-cyclic load-balancing §5.1 discusses. Min-plus
//! multiplies are SUMMA sweeps (one step per processor column, panels
//! broadcast along rows/columns); base cases run a tile-pivot blocked FW.
//!
//! Measured shape: `B = Θ(n²/√p · log p)`, `L = Θ(2^depth · √p · log p)` —
//! the dense-comparator row of Table 2 (Solomonik et al. tune the recursion
//! depth to reach `√p log²p`; we fix a small depth, which only changes
//! constants/log factors, and document the simplification in DESIGN.md).

use apsp_graph::{Csr, DenseDist};
use apsp_minplus::{fw_in_place, gemm, MinPlusMatrix};
use apsp_simnet::{
    FaultPlan, FaultSummary, Launch, Machine, MachineError, RecoveryPolicy, RecoveryReport,
    RunReport,
};
use apsp_transport::{NativeMachine, Transport};

/// Result of a [`dc_apsp`] run.
pub struct DcApspResult {
    /// All-pairs distances (input vertex ids).
    pub dist: DenseDist,
    /// Measured communication report.
    pub report: RunReport,
}

/// Block-cyclic geometry shared by all ranks.
#[derive(Clone, Copy, Debug)]
struct Cyclic {
    /// Grid side `√p`.
    ng: usize,
    /// Tile side in scalars.
    ts: usize,
    /// Tiles per dimension (`T`), a multiple of `ng`.
    tiles: usize,
}

impl Cyclic {
    fn new(n: usize, ng: usize, depth: u32) -> Self {
        let tiles = ng << depth;
        let ts = n.div_ceil(tiles).max(1);
        Cyclic { ng, ts, tiles }
    }

    /// Grid coordinates (0-based) of a rank.
    fn coords(&self, rank: usize) -> (usize, usize) {
        (rank / self.ng, rank % self.ng)
    }

    /// Tiles of `range` owned by grid row/column index `rc` (0-based),
    /// ascending.
    fn owned_in(&self, range: std::ops::Range<usize>, rc: usize) -> Vec<usize> {
        range.filter(|t| t % self.ng == rc).collect()
    }
}

/// Per-rank tile storage.
struct Tiles {
    geo: Cyclic,
    my_row: usize,
    my_col: usize,
    /// Local tiles indexed by (global_i / ng, global_j / ng).
    data: Vec<MinPlusMatrix>,
}

impl Tiles {
    fn new(geo: Cyclic, rank: usize, g: &Csr) -> Self {
        let (my_row, my_col) = geo.coords(rank);
        let per_dim = geo.tiles / geo.ng;
        let mut data = Vec::with_capacity(per_dim * per_dim);
        let n = g.n();
        for li in 0..per_dim {
            for lj in 0..per_dim {
                let (gi, gj) = (li * geo.ng + my_row, lj * geo.ng + my_col);
                let (r0, c0) = (gi * geo.ts, gj * geo.ts);
                let mut tile = MinPlusMatrix::empty(geo.ts, geo.ts);
                for r in 0..geo.ts {
                    if gi == gj {
                        // diagonal tile: zero self-distance (padded vertices
                        // included — they stay isolated otherwise)
                        tile.set(r, r, 0.0);
                    }
                    let u = r0 + r;
                    if u >= n {
                        continue;
                    }
                    for (v, w) in g.edges_of(u) {
                        if v >= c0 && v < c0 + geo.ts {
                            tile.relax(r, v - c0, w);
                        }
                    }
                }
                data.push(tile);
            }
        }
        Tiles { geo, my_row, my_col, data }
    }

    fn local_idx(&self, gi: usize, gj: usize) -> usize {
        debug_assert_eq!(gi % self.geo.ng, self.my_row, "tile ({gi},{gj}) not owned");
        debug_assert_eq!(gj % self.geo.ng, self.my_col);
        let per_dim = self.geo.tiles / self.geo.ng;
        (gi / self.geo.ng) * per_dim + gj / self.geo.ng
    }

    fn tile(&self, gi: usize, gj: usize) -> &MinPlusMatrix {
        &self.data[self.local_idx(gi, gj)]
    }

    fn tile_mut(&mut self, gi: usize, gj: usize) -> &mut MinPlusMatrix {
        let idx = self.local_idx(gi, gj);
        &mut self.data[idx]
    }

    /// Serializes the owned tiles of `rows × cols` (ascending `(i, j)`).
    fn pack(&self, rows: &[usize], cols: &[usize]) -> Vec<f64> {
        let mut out = Vec::with_capacity(rows.len() * cols.len() * self.geo.ts * self.geo.ts);
        for &i in rows {
            for &j in cols {
                out.extend_from_slice(self.tile(i, j).as_slice());
            }
        }
        out
    }
}

/// Deserializes a packed panel into `(tile_index → matrix)` lookups.
struct Panel {
    rows: Vec<usize>,
    cols: Vec<usize>,
    ts: usize,
    data: Vec<f64>,
}

impl Panel {
    fn tile(&self, i: usize, j: usize) -> MinPlusMatrix {
        let ri = self.rows.iter().position(|&r| r == i).expect("row in panel");
        let ci = self.cols.iter().position(|&c| c == j).expect("col in panel");
        let words = self.ts * self.ts;
        let off = (ri * self.cols.len() + ci) * words;
        MinPlusMatrix::from_raw(self.ts, self.ts, self.data[off..off + words].to_vec())
    }
}

fn tag(phase: u64, a: usize, b: usize) -> u64 {
    0xDC_0000_0000_0000 | (phase << 40) | ((a as u64) << 20) | b as u64
}

/// One SUMMA sweep: `C[rr × cc] ⊕= A[rr × kk] ⊗ B[kk × cc]` over tile
/// ranges. Snapshots of the operand ranges are taken locally first, so
/// aliasing with `C` (e.g. `A₁₂ ← A₁₁ ⊗ A₁₂`) is safe.
#[allow(clippy::too_many_arguments)]
fn summa<C: Transport>(
    comm: &mut C,
    t: &mut Tiles,
    rr: std::ops::Range<usize>,
    kk: std::ops::Range<usize>,
    cc: std::ops::Range<usize>,
    seq: &mut u64,
) {
    let geo = t.geo;
    let ng = geo.ng;
    let my_rows = geo.owned_in(rr.clone(), t.my_row);
    let my_cols = geo.owned_in(cc.clone(), t.my_col);
    // local operand snapshots (A panel slice this rank owns per step, and
    // the B rows it owns)
    let full_row_group: Vec<usize> = (0..ng).map(|c| t.my_row * ng + c).collect();
    let full_col_group: Vec<usize> = (0..ng).map(|r| r * ng + t.my_col).collect();

    // snapshot my owned A (rows rr) and B (rows kk) tiles to decouple from C
    let a_snapshot: Vec<(usize, usize, MinPlusMatrix)> = {
        let my_ks = geo.owned_in(kk.clone(), t.my_col);
        my_rows
            .iter()
            .flat_map(|&i| my_ks.iter().map(move |&k| (i, k)))
            .map(|(i, k)| (i, k, t.tile(i, k).clone()))
            .collect()
    };
    let b_snapshot: Vec<(usize, usize, MinPlusMatrix)> = {
        let my_ks = geo.owned_in(kk.clone(), t.my_row);
        my_ks
            .iter()
            .flat_map(|&k| my_cols.iter().map(move |&j| (k, j)))
            .map(|(k, j)| (k, j, t.tile(k, j).clone()))
            .collect()
    };

    *seq += 1;
    let s0 = *seq;
    let mut summa_span = comm.span("summa", s0);
    let comm: &mut C = &mut summa_span;
    for step in 0..ng {
        // panel of A: k-tiles owned by processor column `step`
        let step_ks = geo.owned_in(kk.clone(), step);
        let a_root = t.my_row * ng + step;
        let a_payload = (t.my_col == step).then(|| {
            let mut out = Vec::new();
            for &i in &my_rows {
                for &k in &step_ks {
                    let tile = a_snapshot
                        .iter()
                        .find(|&&(ti, tk, _)| ti == i && tk == k)
                        .map(|(_, _, m)| m)
                        .expect("own A tile");
                    out.extend_from_slice(tile.as_slice());
                }
            }
            out
        });
        let a_rows = geo.owned_in(rr.clone(), t.my_row);
        let a_data = comm.bcast(&full_row_group, a_root, tag(1, s0 as usize, step), a_payload);
        comm.alloc(a_data.len());
        let a_panel = Panel { rows: a_rows, cols: step_ks.clone(), ts: geo.ts, data: a_data };

        // panel of B: k-tiles owned by processor row `step`
        let b_root = step * ng + t.my_col;
        let b_ks = geo.owned_in(kk.clone(), step);
        let b_payload = (t.my_row == step).then(|| {
            let mut out = Vec::new();
            for &k in &b_ks {
                for &j in &my_cols {
                    let tile = b_snapshot
                        .iter()
                        .find(|&&(tk, tj, _)| tk == k && tj == j)
                        .map(|(_, _, m)| m)
                        .expect("own B tile");
                    out.extend_from_slice(tile.as_slice());
                }
            }
            out
        });
        let b_data = comm.bcast(&full_col_group, b_root, tag(2, s0 as usize, step), b_payload);
        comm.alloc(b_data.len());
        let b_panel = Panel { rows: b_ks, cols: my_cols.clone(), ts: geo.ts, data: b_data };

        // local multiply-accumulate
        let mut ops = 0u64;
        for &i in &my_rows {
            for &k in &a_panel.cols.clone() {
                let a_tile = a_panel.tile(i, k);
                if a_tile.is_empty_block() {
                    continue;
                }
                for &j in &my_cols {
                    let b_tile = b_panel.tile(k, j);
                    ops += gemm(t.tile_mut(i, j), &a_tile, &b_tile);
                }
            }
        }
        comm.compute(ops);
        comm.release(a_panel.data.len());
        comm.release(b_panel.data.len());
    }
}

/// Tile-pivot blocked FW over `range × range` — the recursion base case.
fn base_fw<C: Transport>(
    comm: &mut C,
    t: &mut Tiles,
    range: std::ops::Range<usize>,
    seq: &mut u64,
) {
    let mut fw_span = comm.span("base-fw", range.start as u64);
    let comm: &mut C = &mut fw_span;
    let geo = t.geo;
    let ng = geo.ng;
    let full_row_group: Vec<usize> = (0..ng).map(|c| t.my_row * ng + c).collect();
    let full_col_group: Vec<usize> = (0..ng).map(|r| r * ng + t.my_col).collect();
    let my_rows = geo.owned_in(range.clone(), t.my_row);
    let my_cols = geo.owned_in(range.clone(), t.my_col);

    for k in range.clone() {
        *seq += 1;
        let s = *seq as usize;
        let (kr, kc) = (k % ng, k % ng);
        // close the pivot tile
        if t.my_row == kr && t.my_col == kc {
            let ops = fw_in_place(t.tile_mut(k, k));
            comm.compute(ops);
        }
        // pivot down its processor column, update column panel tiles
        let piv_owner = kr * ng + kc;
        if t.my_col == kc {
            let payload = (comm.rank() == piv_owner).then(|| t.tile(k, k).as_slice().to_vec());
            let data = comm.bcast(&full_col_group, piv_owner, tag(3, s, k), payload);
            comm.alloc(data.len());
            let akk = MinPlusMatrix::from_raw(geo.ts, geo.ts, data);
            let mut ops = 0;
            for &i in &my_rows {
                if i == k && comm.rank() == piv_owner {
                    continue;
                }
                let snapshot = t.tile(i, k).clone();
                ops += gemm(t.tile_mut(i, k), &snapshot, &akk);
            }
            comm.compute(ops);
            comm.release(akk.words());
        }
        // pivot along its processor row, update row panel tiles
        if t.my_row == kr {
            let payload = (comm.rank() == piv_owner).then(|| t.tile(k, k).as_slice().to_vec());
            let data = comm.bcast(&full_row_group, piv_owner, tag(4, s, k), payload);
            comm.alloc(data.len());
            let akk = MinPlusMatrix::from_raw(geo.ts, geo.ts, data);
            let mut ops = 0;
            for &j in &my_cols {
                if j == k {
                    continue;
                }
                let snapshot = t.tile(k, j).clone();
                ops += gemm(t.tile_mut(k, j), &akk, &snapshot);
            }
            comm.compute(ops);
            comm.release(akk.words());
        }
        // column panel broadcasts along rows
        let a_root = t.my_row * ng + kc;
        let a_payload = (t.my_col == kc).then(|| t.pack(&my_rows, &[k]));
        let a_data = comm.bcast(&full_row_group, a_root, tag(5, s, k), a_payload);
        comm.alloc(a_data.len());
        let a_panel = Panel { rows: my_rows.clone(), cols: vec![k], ts: geo.ts, data: a_data };
        // row panel broadcasts down columns
        let b_root = kr * ng + t.my_col;
        let b_payload = (t.my_row == kr).then(|| t.pack(&[k], &my_cols));
        let b_data = comm.bcast(&full_col_group, b_root, tag(6, s, k), b_payload);
        comm.alloc(b_data.len());
        let b_panel = Panel { rows: vec![k], cols: my_cols.clone(), ts: geo.ts, data: b_data };
        // outer product
        let mut ops = 0;
        for &i in &my_rows {
            if i == k {
                continue; // row panel already updated against the closed pivot
            }
            let a_tile = a_panel.tile(i, k);
            if a_tile.is_empty_block() {
                continue;
            }
            for &j in &my_cols {
                if j == k {
                    continue; // column panel already updated
                }
                let b_tile = b_panel.tile(k, j);
                ops += gemm(t.tile_mut(i, j), &a_tile, &b_tile);
            }
        }
        comm.compute(ops);
        comm.release(a_panel.data.len());
        comm.release(b_panel.data.len());
    }
}

/// Runs one SUMMA sweep or base-FW call as a checkpointable phase: the
/// body executes only when the supervisor has not already restored past
/// this boundary, and the full local tile set is the phase state committed
/// at the end. Skipping is SPMD-uniform (every rank shares the boundary
/// counter), so `seq`-derived tags stay consistent across ranks.
fn checkpointed<C, F>(comm: &mut C, t: &mut Tiles, body: F)
where
    C: Transport,
    F: FnOnce(&mut C, &mut Tiles),
{
    if comm.phase_live() {
        body(comm, t);
    }
    let packed = {
        let mut out = Vec::with_capacity(t.data.iter().map(|m| m.words()).sum());
        for m in &t.data {
            out.extend_from_slice(m.as_slice());
        }
        out
    };
    let state = comm.commit_phase(packed);
    let ts = t.geo.ts;
    for (tile, chunk) in t.data.iter_mut().zip(state.chunks_exact(ts * ts)) {
        *tile = MinPlusMatrix::from_raw(ts, ts, chunk.to_vec());
    }
}

/// The divide-and-conquer recursion over a tile range.
fn dc<C: Transport>(
    comm: &mut C,
    t: &mut Tiles,
    range: std::ops::Range<usize>,
    depth: u32,
    seq: &mut u64,
) {
    if depth == 0 {
        checkpointed(comm, t, |c, t| base_fw(c, t, range, seq));
        return;
    }
    let mid = range.start + range.len() / 2;
    let (r1, r2) = (range.start..mid, mid..range.end);
    // APSP(A11)
    dc(comm, t, r1.clone(), depth - 1, seq);
    // A12 ← A11 ⊗ A12 ; A21 ← A21 ⊗ A11
    checkpointed(comm, t, |c, t| summa(c, t, r1.clone(), r1.clone(), r2.clone(), seq));
    checkpointed(comm, t, |c, t| summa(c, t, r2.clone(), r1.clone(), r1.clone(), seq));
    // A22 ⊕= A21 ⊗ A12
    checkpointed(comm, t, |c, t| summa(c, t, r2.clone(), r1.clone(), r2.clone(), seq));
    // APSP(A22)
    dc(comm, t, r2.clone(), depth - 1, seq);
    // A12 ← A12 ⊗ A22 ; A21 ← A22 ⊗ A21
    checkpointed(comm, t, |c, t| summa(c, t, r1.clone(), r2.clone(), r2.clone(), seq));
    checkpointed(comm, t, |c, t| summa(c, t, r2.clone(), r2.clone(), r1.clone(), seq));
    // A11 ⊕= A12 ⊗ A21
    checkpointed(comm, t, |c, t| summa(c, t, r1.clone(), r2.clone(), r1.clone(), seq));
}

/// Distributed blocked FW over a **block-cyclic** layout with `2^oversub`
/// tiles per processor per dimension and *no* divide-and-conquer — the
/// §5.1 layout ablation. With `oversub = 0` this is the block layout
/// (tile = block); larger `oversub` serializes the diagonal updates across
/// the tiles a processor owns, which is exactly the latency argument the
/// paper makes against block-cyclic for FW-shaped algorithms.
pub fn cyclic_fw(g: &Csr, n_grid: usize, oversub: u32) -> DcApspResult {
    run_dc(g, n_grid, oversub, 0)
}

/// Runs 2D-DC-APSP on an `n_grid × n_grid` simulated grid with the given
/// recursion depth (0 = pure distributed blocked FW over tiles).
pub fn dc_apsp(g: &Csr, n_grid: usize, depth: u32) -> DcApspResult {
    run_dc(g, n_grid, depth, depth)
}

/// Like [`dc_apsp`], but the run is profiled: `report.profile` carries the
/// span ledger (`summa#s` per SUMMA sweep, `base-fw#t0` per base case) and
/// the p×p communication matrix.
pub fn dc_apsp_profiled(g: &Csr, n_grid: usize, depth: u32) -> DcApspResult {
    run_dc_inner(g, n_grid, depth, depth, Launch::Profiled)
}

/// Like [`dc_apsp`], on the native shared-memory backend: the identical
/// rank program runs on `p = n_grid²` OS threads over real channels.
/// Distances are bit-identical to the simulator's; the report carries no
/// costs (the native machine has no §3.1 clocks).
pub fn dc_apsp_native(g: &Csr, n_grid: usize, depth: u32) -> DcApspResult {
    let _wall = apsp_metrics::time_phase("solve-dcapsp-native");
    let geo = Cyclic::new(g.n(), n_grid, depth);
    let p = n_grid * n_grid;
    let (tiles_raw, report) = NativeMachine::run(p, |comm| rank_program(comm, geo, depth, g));
    assemble(g, geo, tiles_raw, report)
}

/// Verifies the 2D-DC-APSP communication schedule (SUMMA sweeps + base
/// FW) on an `n_grid × n_grid` grid at the given recursion depth: comm
/// scripts are recorded for the static lint and wildcard delivery
/// schedules explored for `p ≤` [`apsp_verify::MAX_EXPLORE_P`]. The
/// digest covers every tile's final distances.
pub fn dc_apsp_verify(
    g: &Csr,
    n_grid: usize,
    depth: u32,
    opts: &apsp_verify::VerifyOptions,
) -> apsp_verify::VerifyReport {
    let geo = Cyclic::new(g.n(), n_grid, depth);
    let p = n_grid * n_grid;
    apsp_verify::verify_program(
        p,
        opts,
        |comm| {
            let tiles = rank_program(comm, geo, depth, g);
            tiles.iter().flat_map(|m| m.as_slice().iter().copied()).collect::<Vec<f64>>()
        },
        apsp_verify::digest_rows,
    )
}

/// Native-backend variant of [`dc_apsp_verify`]: the identical rank
/// program records the same logical comm script over real OS threads and
/// the layer-1 static lint checks it (the layer-2 explorer needs the
/// governed simulator; see `docs/VERIFICATION.md`).
pub fn dc_apsp_native_verify(g: &Csr, n_grid: usize, depth: u32) -> apsp_verify::VerifyReport {
    let geo = Cyclic::new(g.n(), n_grid, depth);
    let p = n_grid * n_grid;
    apsp_verify::lint_recorded_outcome(
        p,
        NativeMachine::run_recorded(p, |comm| rank_program(comm, geo, depth, g)),
    )
}

/// Like [`dc_apsp`], additionally returning every rank's recorded comm
/// script — the cost-model auditor's sampling hook (`apsp audit`):
/// [`apsp_simnet::phase_totals`] reduces the scripts to per-phase
/// (`summa`, `base-fw`) ledgers fitted against the Table 2 dense bounds.
/// Recording never touches the §3.1 clocks, so the embedded report is
/// byte-identical to a plain run's.
pub fn dc_apsp_recorded(
    g: &Csr,
    n_grid: usize,
    depth: u32,
) -> (DcApspResult, Vec<Vec<apsp_simnet::CommEvent>>) {
    let geo = Cyclic::new(g.n(), n_grid, depth);
    let p = n_grid * n_grid;
    let (tiles_raw, report, scripts) =
        Machine::run_recorded(p, |comm| rank_program(comm, geo, depth, g))
            .expect("fault-free recorded launch cannot fail");
    (assemble(g, geo, tiles_raw, report), scripts)
}

/// Like [`dc_apsp`], under a deterministic fault plan: the run recovers
/// (or fails loudly with a [`MachineError`]) and reports its fault history.
pub fn dc_apsp_faulty(
    g: &Csr,
    n_grid: usize,
    depth: u32,
    plan: &FaultPlan,
    profiled: bool,
) -> Result<(DcApspResult, FaultSummary), MachineError> {
    let how = if profiled { Launch::Profiled } else { Launch::Plain };
    run_dc_launch(g, n_grid, depth, depth, how.with_faults(plan))
        .map(|(res, faults)| (res, faults.expect("faulty run carries a summary")))
}

/// Like [`dc_apsp_faulty`], but supervised: every SUMMA sweep and base-FW
/// call is a checkpointable phase, and killed ranks / dead links roll back
/// and re-execute under `policy` instead of aborting the run.
pub fn dc_apsp_recovering(
    g: &Csr,
    n_grid: usize,
    depth: u32,
    plan: &FaultPlan,
    policy: RecoveryPolicy,
    profiled: bool,
) -> Result<(DcApspResult, FaultSummary, RecoveryReport), MachineError> {
    let geo = Cyclic::new(g.n(), n_grid, depth);
    let p = n_grid * n_grid;
    let (tiles_raw, report, faults, recovery) =
        Machine::launch_recovering(p, plan, policy, profiled, |comm| {
            rank_program(comm, geo, depth, g)
        })?;
    Ok((assemble(g, geo, tiles_raw, report), faults, recovery))
}

/// [`dc_apsp_faulty`] on the **native** backend: the same seeded plan
/// over real channel traffic, with `kill=` rules killing actual rank
/// threads. Recovered runs are bit-identical to [`dc_apsp_native`].
pub fn dc_apsp_native_faulty(
    g: &Csr,
    n_grid: usize,
    depth: u32,
    plan: &FaultPlan,
) -> Result<(DcApspResult, FaultSummary), MachineError> {
    let _wall = apsp_metrics::time_phase("solve-dcapsp-native");
    let geo = Cyclic::new(g.n(), n_grid, depth);
    let p = n_grid * n_grid;
    let (tiles_raw, report, faults) =
        NativeMachine::launch_faulty(p, plan, |comm| rank_program(comm, geo, depth, g))?;
    Ok((assemble(g, geo, tiles_raw, report), faults))
}

/// [`dc_apsp_recovering`] on the **native** backend: per-sweep
/// checkpoints, thread-level kill and respawn, spare-thread takeover for
/// permanently dead ranks.
pub fn dc_apsp_native_recovering(
    g: &Csr,
    n_grid: usize,
    depth: u32,
    plan: &FaultPlan,
    policy: RecoveryPolicy,
) -> Result<(DcApspResult, FaultSummary, RecoveryReport), MachineError> {
    let _wall = apsp_metrics::time_phase("solve-dcapsp-native");
    let geo = Cyclic::new(g.n(), n_grid, depth);
    let p = n_grid * n_grid;
    let (tiles_raw, report, faults, recovery) =
        NativeMachine::launch_recovering(p, plan, policy, |comm| {
            rank_program(comm, geo, depth, g)
        })?;
    Ok((assemble(g, geo, tiles_raw, report), faults, recovery))
}

/// Shared driver: `tile_depth` controls the block-cyclic oversubscription
/// (`T = √p · 2^tile_depth` tiles per dimension), `rec_depth ≤ tile_depth`
/// how many divide-and-conquer levels run before the blocked-FW base case.
fn run_dc(g: &Csr, n_grid: usize, tile_depth: u32, rec_depth: u32) -> DcApspResult {
    run_dc_inner(g, n_grid, tile_depth, rec_depth, Launch::Plain)
}

fn run_dc_inner(
    g: &Csr,
    n_grid: usize,
    tile_depth: u32,
    rec_depth: u32,
    how: Launch<'_>,
) -> DcApspResult {
    run_dc_launch(g, n_grid, tile_depth, rec_depth, how).expect("fault-free launch cannot fail").0
}

/// The SPMD rank program: build the local block-cyclic tiles and run the
/// divide-and-conquer recursion over them.
fn rank_program<C: Transport>(
    comm: &mut C,
    geo: Cyclic,
    rec_depth: u32,
    g: &Csr,
) -> Vec<MinPlusMatrix> {
    let mut t = Tiles::new(geo, comm.rank(), g);
    let words: usize = t.data.iter().map(|m| m.words()).sum();
    comm.alloc(words);
    let mut seq = 0u64;
    dc(comm, &mut t, 0..geo.tiles, rec_depth, &mut seq);
    t.data
}

/// Host-side assembly: place every rank's tiles and crop the padding.
fn assemble(
    g: &Csr,
    geo: Cyclic,
    tiles_raw: Vec<Vec<MinPlusMatrix>>,
    report: RunReport,
) -> DcApspResult {
    let n = g.n();
    let mut dist = DenseDist::unconnected(n);
    let per_dim = geo.tiles / geo.ng;
    for (rank, tiles) in tiles_raw.into_iter().enumerate() {
        let (mr, mc) = geo.coords(rank);
        for li in 0..per_dim {
            for lj in 0..per_dim {
                let tile = &tiles[li * per_dim + lj];
                let (gi, gj) = (li * geo.ng + mr, lj * geo.ng + mc);
                let (r0, c0) = (gi * geo.ts, gj * geo.ts);
                for r in 0..geo.ts {
                    for c in 0..geo.ts {
                        if r0 + r < n && c0 + c < n {
                            dist.set(r0 + r, c0 + c, tile.get(r, c));
                        }
                    }
                }
            }
        }
    }
    DcApspResult { dist, report }
}

fn run_dc_launch(
    g: &Csr,
    n_grid: usize,
    tile_depth: u32,
    rec_depth: u32,
    how: Launch<'_>,
) -> Result<(DcApspResult, Option<FaultSummary>), MachineError> {
    let _wall = apsp_metrics::time_phase("solve-dcapsp");
    assert!(rec_depth <= tile_depth, "cannot recurse below tile granularity");
    let geo = Cyclic::new(g.n(), n_grid, tile_depth);
    let p = n_grid * n_grid;
    let (tiles_raw, report, faults) =
        Machine::launch(p, how, |comm| rank_program(comm, geo, rec_depth, g))?;
    Ok((assemble(g, geo, tiles_raw, report), faults))
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::generators::{self, WeightKind};
    use apsp_graph::oracle;

    fn check(g: &Csr, ng: usize, depth: u32) -> RunReport {
        let result = dc_apsp(g, ng, depth);
        let reference = oracle::apsp_dijkstra(g);
        if let Some((i, j, a, b)) = result.dist.first_mismatch(&reference, 1e-9) {
            panic!("ng={ng} depth={depth}: mismatch at ({i},{j}): got {a}, expected {b}");
        }
        result.report
    }

    #[test]
    fn depth_zero_is_blocked_fw() {
        let g = generators::grid2d(4, 4, WeightKind::Integer { max: 6 }, 1);
        check(&g, 3, 0);
    }

    #[test]
    fn depth_one_and_two() {
        let g = generators::connected_gnp(30, 0.1, WeightKind::Uniform { lo: 0.3, hi: 2.0 }, 3);
        check(&g, 3, 1);
        check(&g, 3, 2);
    }

    #[test]
    fn larger_grid() {
        let g = generators::grid2d(7, 7, WeightKind::Integer { max: 4 }, 5);
        check(&g, 7, 1);
    }

    #[test]
    fn padding_does_not_leak() {
        // n = 10 on a 3×3 grid with depth 1: tiles = 6, ts = 2, np = 12 > n
        let g = generators::cycle(10, WeightKind::Integer { max: 9 }, 2);
        let result = check(&g, 3, 1);
        assert!(result.total_words() > 0);
    }

    #[test]
    fn disconnected_graph() {
        let mut b = apsp_graph::GraphBuilder::new(9);
        b.add_edge(0, 1, 1.0);
        b.add_edge(3, 4, 2.0);
        b.add_edge(7, 8, 3.0);
        let g = b.build();
        check(&g, 3, 1);
    }

    #[test]
    fn cyclic_fw_matches_oracle_and_serializes_diagonals() {
        let g = generators::grid2d(6, 6, WeightKind::Integer { max: 4 }, 7);
        let reference = oracle::apsp_dijkstra(&g);
        let mut latencies = Vec::new();
        for oversub in 0..=2u32 {
            let result = cyclic_fw(&g, 3, oversub);
            assert!(result.dist.first_mismatch(&reference, 1e-9).is_none(), "oversub {oversub}");
            latencies.push(result.report.critical_latency());
        }
        // the §5.1 argument: more tiles per diagonal processor → more
        // serialized pivot rounds → strictly growing latency
        assert!(latencies[0] < latencies[1] && latencies[1] < latencies[2], "{latencies:?}");
    }

    #[test]
    fn bandwidth_scales_inverse_sqrt_p() {
        // B ≈ n²/√p: tripling √p should cut critical bandwidth noticeably
        let g = generators::grid2d(8, 8, WeightKind::Unit, 0);
        let b3 = check(&g, 3, 1).critical_bandwidth();
        let b7 = check(&g, 7, 1).critical_bandwidth();
        assert!(b7 < b3, "B(√p=7)={b7} should be below B(√p=3)={b3}");
    }
}
