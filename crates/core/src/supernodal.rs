//! The supernodal block matrix: an ND-ordered graph cut into the `N × N`
//! block grid addressed by scheduling-tree labels (paper Fig. 1d / Fig. 3).

use apsp_etree::SchedTree;
use apsp_graph::{Csr, Permutation};
use apsp_minplus::MinPlusMatrix;
use apsp_partition::NdOrdering;

/// Geometry of the supernodal blocking: the scheduling tree plus each
/// supernode's vertex count and offset in the eliminated ordering.
///
/// Block `(i, j)` (1-based supernode labels) is `size(i) × size(j)`; the
/// `√p × √p` processor grid assigns it to rank `(i−1)·N + (j−1)`.
#[derive(Clone, Debug)]
pub struct SupernodalLayout {
    tree: SchedTree,
    sizes: Vec<usize>,
    offsets: Vec<usize>,
}

impl SupernodalLayout {
    /// Builds the layout from a nested-dissection ordering.
    pub fn from_ordering(nd: &NdOrdering) -> Self {
        Self::new(nd.tree, nd.supernode_sizes.clone())
    }

    /// Builds from a tree and explicit supernode sizes (label order).
    pub fn new(tree: SchedTree, sizes: Vec<usize>) -> Self {
        assert_eq!(sizes.len(), tree.num_supernodes(), "one size per supernode");
        let mut offsets = Vec::with_capacity(sizes.len() + 1);
        offsets.push(0);
        let mut acc = 0;
        for &s in &sizes {
            acc += s;
            offsets.push(acc);
        }
        SupernodalLayout { tree, sizes, offsets }
    }

    /// The scheduling tree.
    pub fn tree(&self) -> &SchedTree {
        &self.tree
    }

    /// Grid side `N = √p` (also the supernode count).
    pub fn n_super(&self) -> usize {
        self.tree.num_supernodes()
    }

    /// Total vertex count.
    pub fn n(&self) -> usize {
        // offsets always starts with the sentinel 0
        self.offsets.last().copied().unwrap_or(0)
    }

    /// Processor count `p = N²`.
    pub fn p(&self) -> usize {
        self.n_super() * self.n_super()
    }

    /// Vertex count of supernode `k` (1-based label).
    pub fn size(&self, k: usize) -> usize {
        self.sizes[k - 1]
    }

    /// First vertex index of supernode `k` in the eliminated ordering.
    pub fn offset(&self, k: usize) -> usize {
        self.offsets[k - 1]
    }

    /// Vertex index range of supernode `k`.
    pub fn range(&self, k: usize) -> std::ops::Range<usize> {
        self.offsets[k - 1]..self.offsets[k]
    }

    /// Words of block `(i, j)`.
    pub fn block_words(&self, i: usize, j: usize) -> usize {
        self.size(i) * self.size(j)
    }

    /// Rank of the processor owning block `(i, j)` (row-major grid).
    pub fn rank_of_block(&self, i: usize, j: usize) -> usize {
        let n = self.n_super();
        debug_assert!((1..=n).contains(&i) && (1..=n).contains(&j));
        (i - 1) * n + (j - 1)
    }

    /// Inverse of [`SupernodalLayout::rank_of_block`].
    pub fn block_of_rank(&self, rank: usize) -> (usize, usize) {
        let n = self.n_super();
        debug_assert!(rank < n * n);
        (rank / n + 1, rank % n + 1)
    }

    /// Builds block `(i, j)` of the adjacency matrix of `g_perm` — the
    /// graph **already permuted** into the eliminated ordering. The
    /// diagonal of diagonal blocks is `0`.
    pub fn extract_block(&self, g_perm: &Csr, i: usize, j: usize) -> MinPlusMatrix {
        let (ri, rj) = (self.range(i), self.range(j));
        let mut block = MinPlusMatrix::empty(ri.len(), rj.len());
        if i == j {
            for d in 0..ri.len() {
                block.set(d, d, 0.0);
            }
        }
        for (bi, u) in ri.clone().enumerate() {
            for (v, w) in g_perm.edges_of(u) {
                if rj.contains(&v) {
                    block.relax(bi, v - rj.start, w);
                }
            }
        }
        block
    }

    /// Builds block `(i, j)` of a **directed** adjacency (asymmetric
    /// weights, symmetric pattern) already permuted into the eliminated
    /// ordering. Entry `(r, c)` holds the arc weight `row-vertex → col-
    /// vertex`; missing directions of pattern pairs stay `∞`.
    pub fn extract_block_directed(
        &self,
        dg_perm: &apsp_graph::DiCsr,
        i: usize,
        j: usize,
    ) -> MinPlusMatrix {
        let (ri, rj) = (self.range(i), self.range(j));
        let mut block = MinPlusMatrix::empty(ri.len(), rj.len());
        if i == j {
            for d in 0..ri.len() {
                block.set(d, d, 0.0);
            }
        }
        for (bi, u) in ri.clone().enumerate() {
            for (v, w) in dg_perm.arcs_of(u) {
                if rj.contains(&v) && w.is_finite() {
                    block.relax(bi, v - rj.start, w);
                }
            }
        }
        block
    }

    /// Builds every block (row-major `N × N`) — convenience for
    /// shared-memory algorithms and tests.
    pub fn extract_all_blocks(&self, g_perm: &Csr) -> Vec<MinPlusMatrix> {
        let n = self.n_super();
        let mut out = Vec::with_capacity(n * n);
        for i in 1..=n {
            for j in 1..=n {
                out.push(self.extract_block(g_perm, i, j));
            }
        }
        out
    }

    /// Counts blocks that are structurally empty in the ND-ordered
    /// adjacency matrix (the Fig. 1 empty-block census).
    pub fn empty_block_census(&self, g_perm: &Csr) -> EmptyBlockCensus {
        let n = self.n_super();
        let mut census = EmptyBlockCensus::default();
        for i in 1..=n {
            for j in 1..=n {
                census.total += 1;
                let empty = self.extract_block(g_perm, i, j).is_empty_block();
                if empty {
                    census.empty += 1;
                }
                if self.tree.cousins(i, j) {
                    census.cousin_blocks += 1;
                    if !empty {
                        // legal only for orderings that are not true nested
                        // dissections (e.g. the "natural order" baseline of
                        // the Fig. 1 census); counted so callers can tell
                        census.nonempty_cousin_blocks += 1;
                    }
                }
            }
        }
        census
    }

    /// Reassembles a dense matrix (in eliminated ordering) from per-block
    /// buffers laid out row-major by `(i−1)·N + (j−1)`.
    pub fn assemble_dense(&self, blocks: &[MinPlusMatrix]) -> apsp_graph::DenseDist {
        let n = self.n();
        let ns = self.n_super();
        assert_eq!(blocks.len(), ns * ns, "one buffer per block");
        let mut out = apsp_graph::DenseDist::unconnected(n);
        for i in 1..=ns {
            for j in 1..=ns {
                let b = &blocks[self.rank_of_block(i, j)];
                assert_eq!(b.rows(), self.size(i), "block ({i},{j}) row mismatch");
                assert_eq!(b.cols(), self.size(j), "block ({i},{j}) col mismatch");
                let (oi, oj) = (self.offset(i), self.offset(j));
                for r in 0..b.rows() {
                    for c in 0..b.cols() {
                        out.set(oi + r, oj + c, b.get(r, c));
                    }
                }
            }
        }
        out
    }

    /// Un-permutes a dense matrix from the eliminated ordering back to the
    /// input graph's vertex ids.
    pub fn unpermute(dist: &apsp_graph::DenseDist, perm: &Permutation) -> apsp_graph::DenseDist {
        let n = dist.n();
        assert_eq!(perm.len(), n);
        let mut out = apsp_graph::DenseDist::unconnected(n);
        for old_i in 0..n {
            for old_j in 0..n {
                out.set(old_i, old_j, dist.get(perm.to_new(old_i), perm.to_new(old_j)));
            }
        }
        out
    }
}

/// Result of [`SupernodalLayout::empty_block_census`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EmptyBlockCensus {
    /// Total block count `N²`.
    pub total: usize,
    /// Structurally empty blocks.
    pub empty: usize,
    /// Blocks whose supernodes are cousins (all empty under a valid ND
    /// ordering).
    pub cousin_blocks: usize,
    /// Cousin blocks holding finite entries — zero for every valid nested
    /// dissection; positive for baseline orderings like "natural order".
    pub nonempty_cousin_blocks: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use apsp_graph::generators::{self, WeightKind};
    use apsp_partition::{grid_nd, nested_dissection, NdOptions};

    fn fig1_layout() -> (Csr, SupernodalLayout, Permutation) {
        let g = generators::paper_fig1();
        let nd = nested_dissection(&g, 2, &NdOptions::default());
        nd.validate(&g).unwrap();
        let layout = SupernodalLayout::from_ordering(&nd);
        let gp = g.permuted(&nd.perm);
        (gp, layout, nd.perm)
    }

    #[test]
    fn fig1_block_structure() {
        let (gp, layout, _) = fig1_layout();
        assert_eq!(layout.n_super(), 3);
        assert_eq!(layout.p(), 9);
        assert_eq!(layout.n(), 7);
        // the cross blocks between the two leaf supernodes are empty
        assert!(layout.extract_block(&gp, 1, 2).is_empty_block());
        assert!(layout.extract_block(&gp, 2, 1).is_empty_block());
        // panels against the separator are not
        assert!(!layout.extract_block(&gp, 1, 3).is_empty_block());
        assert!(!layout.extract_block(&gp, 3, 2).is_empty_block());
        let census = layout.empty_block_census(&gp);
        assert_eq!(census.total, 9);
        assert_eq!(census.cousin_blocks, 2);
        assert_eq!(census.empty, 2);
    }

    #[test]
    fn diagonal_blocks_have_zero_diagonal() {
        let (gp, layout, _) = fig1_layout();
        for k in 1..=3 {
            let b = layout.extract_block(&gp, k, k);
            for d in 0..b.rows() {
                assert_eq!(b.get(d, d), 0.0);
            }
            assert!(b.is_symmetric(1e-12));
        }
    }

    #[test]
    fn rank_mapping_roundtrip() {
        let (_, layout, _) = fig1_layout();
        for i in 1..=3 {
            for j in 1..=3 {
                let r = layout.rank_of_block(i, j);
                assert_eq!(layout.block_of_rank(r), (i, j));
            }
        }
    }

    #[test]
    fn assemble_matches_extracted_blocks() {
        let g = generators::grid2d(5, 5, WeightKind::Integer { max: 4 }, 3);
        let nd = grid_nd(5, 5, 2);
        let layout = SupernodalLayout::from_ordering(&nd);
        let gp = g.permuted(&nd.perm);
        let blocks = layout.extract_all_blocks(&gp);
        let dense = layout.assemble_dense(&blocks);
        // spot-check: dense equals the permuted adjacency
        for (u, v, w) in gp.edges() {
            assert_eq!(dense.get(u, v), w);
            assert_eq!(dense.get(v, u), w);
        }
        for d in 0..25 {
            assert_eq!(dense.get(d, d), 0.0);
        }
    }

    #[test]
    fn unpermute_restores_vertex_ids() {
        let g = generators::grid2d(4, 4, WeightKind::Integer { max: 5 }, 1);
        let nd = grid_nd(4, 4, 2);
        let layout = SupernodalLayout::from_ordering(&nd);
        let gp = g.permuted(&nd.perm);
        let blocks = layout.extract_all_blocks(&gp);
        let dense = layout.assemble_dense(&blocks);
        let restored = SupernodalLayout::unpermute(&dense, &nd.perm);
        for (u, v, w) in g.edges() {
            assert_eq!(restored.get(u, v), w, "edge ({u},{v})");
        }
    }

    #[test]
    fn zero_size_supernodes_yield_zero_blocks() {
        let g = generators::path(5, WeightKind::Unit, 0);
        let nd = nested_dissection(&g, 4, &NdOptions::default());
        let layout = SupernodalLayout::from_ordering(&nd);
        let gp = g.permuted(&nd.perm);
        let blocks = layout.extract_all_blocks(&gp);
        assert_eq!(blocks.len(), 15 * 15);
        let dense = layout.assemble_dense(&blocks);
        assert_eq!(dense.n(), 5);
    }

    #[test]
    fn grid_census_counts_most_blocks_empty() {
        let g = generators::grid2d(16, 16, WeightKind::Unit, 0);
        let nd = grid_nd(16, 16, 4);
        let layout = SupernodalLayout::from_ordering(&nd);
        let gp = g.permuted(&nd.perm);
        let census = layout.empty_block_census(&gp);
        assert_eq!(census.total, 225);
        // most cousin blocks exist and are empty
        assert!(census.empty >= census.cousin_blocks / 2, "{census:?}");
        assert!(census.cousin_blocks > 100, "{census:?}");
    }
}
