//! Property tests: semiring laws and kernel equivalences.

use apsp_minplus::{fw_in_place, gemm, BlockedMatrix, Blocking, MinPlusMatrix, INF};
use proptest::prelude::*;

/// Strategy: square matrix of dimension `n` with ~`density` finite entries.
fn arb_square(max_n: usize) -> impl Strategy<Value = MinPlusMatrix> {
    (2..max_n).prop_flat_map(|n| {
        proptest::collection::vec(proptest::option::weighted(0.6, 0u32..100), n * n).prop_map(
            move |cells| {
                MinPlusMatrix::from_fn(n, n, |i, j| match cells[i * n + j] {
                    Some(w) => w as f64 / 7.0,
                    None => INF,
                })
            },
        )
    })
}

/// Symmetrize and clear the diagonal (adjacency-matrix shape).
fn symmetrized(mut a: MinPlusMatrix) -> MinPlusMatrix {
    let n = a.rows();
    for i in 0..n {
        for j in (i + 1)..n {
            let w = a.get(i, j).min(a.get(j, i));
            a.set(i, j, w);
            a.set(j, i, w);
        }
        a.set(i, i, INF);
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gemm_is_associative(a in arb_square(8)) {
        // ((A ⊗ A) ⊗ A) == (A ⊗ (A ⊗ A)); fresh outputs so no accumulation
        let n = a.rows();
        let mut aa = MinPlusMatrix::empty(n, n);
        gemm(&mut aa, &a, &a);
        let mut left = MinPlusMatrix::empty(n, n);
        gemm(&mut left, &aa, &a);
        let mut right = MinPlusMatrix::empty(n, n);
        gemm(&mut right, &a, &aa);
        prop_assert!(left.max_diff(&right) < 1e-9);
    }

    #[test]
    fn identity_is_multiplicative_identity(a in arb_square(9)) {
        let n = a.rows();
        let id = MinPlusMatrix::identity(n);
        let mut left = MinPlusMatrix::empty(n, n);
        gemm(&mut left, &id, &a);
        let mut right = MinPlusMatrix::empty(n, n);
        gemm(&mut right, &a, &id);
        prop_assert!(left.max_diff(&a) < 1e-12);
        prop_assert!(right.max_diff(&a) < 1e-12);
    }

    #[test]
    fn fw_equals_squaring_closure(a in arb_square(9)) {
        let a = symmetrized(a);
        let reference = a.closure_by_squaring();
        let mut fast = a.clone();
        fw_in_place(&mut fast);
        prop_assert!(fast.max_diff(&reference) < 1e-9);
    }

    #[test]
    fn fw_is_idempotent(a in arb_square(9)) {
        let a = symmetrized(a);
        let mut once = a.clone();
        fw_in_place(&mut once);
        let mut twice = once.clone();
        fw_in_place(&mut twice);
        prop_assert!(once.max_diff(&twice) < 1e-12);
    }

    #[test]
    fn blocked_fw_matches_classical(a in arb_square(12), bsize in 1usize..5) {
        let a = symmetrized(a);
        let mut reference = a.clone();
        fw_in_place(&mut reference);
        let mut bm = BlockedMatrix::from_dense(&a, Blocking::uniform(a.rows(), bsize));
        let order: Vec<usize> = (0..bm.blocking().num_blocks()).collect();
        bm.blocked_fw(&order);
        prop_assert!(bm.to_dense().max_diff(&reference) < 1e-9);
    }

    #[test]
    fn blocked_fw_reversed_order_matches(a in arb_square(12), bsize in 1usize..5) {
        let a = symmetrized(a);
        let mut reference = a.clone();
        fw_in_place(&mut reference);
        let mut bm = BlockedMatrix::from_dense(&a, Blocking::uniform(a.rows(), bsize));
        let order: Vec<usize> = (0..bm.blocking().num_blocks()).rev().collect();
        bm.blocked_fw(&order);
        prop_assert!(bm.to_dense().max_diff(&reference) < 1e-9);
    }

    #[test]
    fn transpose_commutes_with_fw_on_symmetric(a in arb_square(9)) {
        let a = symmetrized(a);
        let mut d = a.clone();
        fw_in_place(&mut d);
        prop_assert!(d.is_symmetric(1e-9));
    }
}
