//! Blocked matrices and the blocked Floyd–Warshall algorithm (§3.3),
//! with structural-empty block skipping (§4.1).

use crate::kernels::{fw_in_place, gemm};
use crate::matrix::MinPlusMatrix;
use crate::perf;

/// A partition of `0..total` into consecutive blocks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Blocking {
    sizes: Vec<usize>,
    offsets: Vec<usize>, // offsets.len() == sizes.len() + 1
}

impl Blocking {
    /// Blocking from explicit block sizes (zero-size blocks are allowed —
    /// they arise from empty separators).
    pub fn new(sizes: Vec<usize>) -> Self {
        let mut offsets = Vec::with_capacity(sizes.len() + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for &s in &sizes {
            acc += s;
            offsets.push(acc);
        }
        Blocking { sizes, offsets }
    }

    /// Uniform blocking of `total` into blocks of at most `b`.
    pub fn uniform(total: usize, b: usize) -> Self {
        assert!(b > 0, "block size must be positive");
        let mut sizes = Vec::new();
        let mut left = total;
        while left > 0 {
            let s = left.min(b);
            sizes.push(s);
            left -= s;
        }
        if sizes.is_empty() {
            sizes.push(0);
        }
        Blocking::new(sizes)
    }

    /// Number of blocks.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.sizes.len()
    }

    /// Size of block `i`.
    #[inline]
    pub fn size(&self, i: usize) -> usize {
        self.sizes[i]
    }

    /// Start index of block `i`.
    #[inline]
    pub fn offset(&self, i: usize) -> usize {
        self.offsets[i]
    }

    /// Index range of block `i`.
    #[inline]
    pub fn range(&self, i: usize) -> std::ops::Range<usize> {
        self.offsets[i]..self.offsets[i + 1]
    }

    /// Total element count.
    #[inline]
    pub fn total(&self) -> usize {
        self.offsets[self.offsets.len() - 1]
    }

    /// Block containing element `idx`.
    pub fn block_of(&self, idx: usize) -> usize {
        assert!(idx < self.total(), "index out of range");
        // offsets are sorted; find the last offset <= idx
        match self.offsets.binary_search(&idx) {
            Ok(mut b) => {
                // idx is a block start, but zero-size blocks share offsets —
                // advance to the block that actually contains it.
                while self.sizes[b] == 0 {
                    b += 1;
                }
                b
            }
            Err(ins) => ins - 1,
        }
    }

    /// The block sizes.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }
}

/// Statistics returned by [`BlockedMatrix::blocked_fw`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FwStats {
    /// Scalar relaxations executed.
    pub ops: u64,
    /// Block-level updates performed (diagonal + panel + outer).
    pub block_updates: u64,
    /// Block-level updates skipped because an operand was structurally empty.
    pub block_skips: u64,
}

/// A square matrix stored as an `N × N` grid of dense blocks, where `None`
/// is a structurally empty (all-`∞`) block that costs nothing to "update".
#[derive(Clone, Debug)]
pub struct BlockedMatrix {
    blocking: Blocking,
    blocks: Vec<Option<MinPlusMatrix>>, // row-major N×N
}

impl BlockedMatrix {
    /// All-empty blocked matrix.
    pub fn empty(blocking: Blocking) -> Self {
        let nb = blocking.num_blocks();
        BlockedMatrix { blocking, blocks: (0..nb * nb).map(|_| None).collect() }
    }

    /// Splits a dense square matrix into blocks; all-`∞` blocks become `None`.
    pub fn from_dense(dense: &MinPlusMatrix, blocking: Blocking) -> Self {
        assert_eq!(dense.rows(), dense.cols(), "dense matrix must be square");
        assert_eq!(dense.rows(), blocking.total(), "blocking does not cover the matrix");
        let nb = blocking.num_blocks();
        let mut blocks = Vec::with_capacity(nb * nb);
        for bi in 0..nb {
            for bj in 0..nb {
                let (ri, rj) = (blocking.range(bi), blocking.range(bj));
                let block = MinPlusMatrix::from_fn(ri.len(), rj.len(), |i, j| {
                    dense.get(ri.start + i, rj.start + j)
                });
                blocks.push(if block.is_empty_block() { None } else { Some(block) });
            }
        }
        BlockedMatrix { blocking, blocks }
    }

    /// Reassembles the dense matrix.
    pub fn to_dense(&self) -> MinPlusMatrix {
        let n = self.blocking.total();
        let nb = self.blocking.num_blocks();
        let mut out = MinPlusMatrix::empty(n, n);
        for bi in 0..nb {
            for bj in 0..nb {
                if let Some(block) = &self.blocks[bi * nb + bj] {
                    let (oi, oj) = (self.blocking.offset(bi), self.blocking.offset(bj));
                    for i in 0..block.rows() {
                        for j in 0..block.cols() {
                            out.set(oi + i, oj + j, block.get(i, j));
                        }
                    }
                }
            }
        }
        out
    }

    /// The blocking.
    pub fn blocking(&self) -> &Blocking {
        &self.blocking
    }

    /// Shared access to block `(i, j)` (`None` = structurally empty).
    pub fn block(&self, i: usize, j: usize) -> Option<&MinPlusMatrix> {
        let nb = self.blocking.num_blocks();
        self.blocks[i * nb + j].as_ref()
    }

    /// Installs a block.
    pub fn set_block(&mut self, i: usize, j: usize, b: MinPlusMatrix) {
        let nb = self.blocking.num_blocks();
        assert_eq!(b.rows(), self.blocking.size(i), "block row size mismatch");
        assert_eq!(b.cols(), self.blocking.size(j), "block col size mismatch");
        self.blocks[i * nb + j] = Some(b);
    }

    /// Ensures block `(i, j)` is materialized and returns it mutably.
    pub fn materialize(&mut self, i: usize, j: usize) -> &mut MinPlusMatrix {
        let nb = self.blocking.num_blocks();
        let (ri, rj) = (self.blocking.size(i), self.blocking.size(j));
        self.blocks[i * nb + j].get_or_insert_with(|| MinPlusMatrix::empty(ri, rj))
    }

    /// Number of materialized (structurally non-empty) blocks.
    pub fn nonempty_blocks(&self) -> usize {
        self.blocks.iter().filter(|b| b.is_some()).count()
    }

    fn take(&mut self, i: usize, j: usize) -> Option<MinPlusMatrix> {
        let nb = self.blocking.num_blocks();
        self.blocks[i * nb + j].take()
    }

    fn put(&mut self, i: usize, j: usize, b: Option<MinPlusMatrix>) {
        let nb = self.blocking.num_blocks();
        self.blocks[i * nb + j] = b;
    }

    /// Blocked Floyd–Warshall (§3.3) with an arbitrary pivot order and
    /// structural-empty skipping (§4.1). Visits each pivot block once:
    /// diagonal update → panel updates → min-plus outer products.
    ///
    /// Correct for any permutation `order` of `0..N` because scalar FW is
    /// pivot-order independent; the nested-dissection orders from
    /// `apsp-partition` additionally keep cousin blocks empty, which is what
    /// the skip counters measure.
    ///
    /// # Panics
    /// Panics when `order` is not a permutation of the block indices.
    pub fn blocked_fw(&mut self, order: &[usize]) -> FwStats {
        let nb = self.blocking.num_blocks();
        {
            let mut seen = vec![false; nb];
            assert_eq!(order.len(), nb, "pivot order must cover all blocks");
            for &k in order {
                assert!(k < nb && !seen[k], "pivot order is not a permutation");
                seen[k] = true;
            }
        }
        let mut stats = FwStats::default();
        for &k in order {
            if self.blocking.size(k) == 0 {
                continue; // zero-size supernode: nothing to pivot on
            }
            // diagonal update: A(k,k) <- ClassicalFW(A(k,k))
            let akk = self.materialize(k, k);
            stats.ops += fw_in_place(akk);
            stats.block_updates += 1;
            let akk = self.block(k, k).expect("diagonal just materialized").clone();

            // panel updates
            for i in 0..nb {
                if i == k {
                    continue;
                }
                // column panel: A(i,k) ⊕= A(i,k) ⊗ A(k,k)
                if let Some(mut aik) = self.take(i, k) {
                    let snapshot = aik.clone();
                    stats.ops += gemm(&mut aik, &snapshot, &akk);
                    stats.block_updates += 1;
                    self.put(i, k, Some(aik));
                } else {
                    stats.block_skips += 1;
                }
                // row panel: A(k,j) ⊕= A(k,k) ⊗ A(k,j)
                if let Some(mut akj) = self.take(k, i) {
                    let snapshot = akj.clone();
                    stats.ops += gemm(&mut akj, &akk, &snapshot);
                    stats.block_updates += 1;
                    self.put(k, i, Some(akj));
                } else {
                    stats.block_skips += 1;
                }
            }

            // min-plus outer product: A(i,j) ⊕= A(i,k) ⊗ A(k,j)
            for i in 0..nb {
                if i == k || self.block(i, k).is_none() {
                    if i != k {
                        stats.block_skips += 1;
                    }
                    continue;
                }
                let aik = self.block(i, k).expect("checked above").clone();
                for j in 0..nb {
                    if j == k {
                        continue;
                    }
                    let Some(akj) = self.block(k, j) else {
                        stats.block_skips += 1;
                        continue;
                    };
                    let akj = akj.clone();
                    let aij = self.materialize(i, j);
                    stats.ops += gemm(aij, &aik, &akj);
                    stats.block_updates += 1;
                }
            }
        }
        let pc = perf::counters();
        pc.block_updates.add(stats.block_updates);
        pc.block_skips.add(stats.block_skips);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::INF;

    fn random_sym(n: usize, density: f64, seed: u64) -> MinPlusMatrix {
        let mut rng = seed | 1;
        let mut rnd = move || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((rng >> 33) % 1000) as f64 / 1000.0
        };
        let mut a = MinPlusMatrix::empty(n, n);
        for i in 0..n {
            for j in (i + 1)..n {
                if rnd() < density {
                    let w = 0.1 + rnd() * 5.0;
                    a.set(i, j, w);
                    a.set(j, i, w);
                }
            }
        }
        a
    }

    #[test]
    fn blocking_shapes() {
        let b = Blocking::uniform(10, 4);
        assert_eq!(b.sizes(), &[4, 4, 2]);
        assert_eq!(b.total(), 10);
        assert_eq!(b.offset(2), 8);
        assert_eq!(b.block_of(0), 0);
        assert_eq!(b.block_of(7), 1);
        assert_eq!(b.block_of(9), 2);
        let z = Blocking::new(vec![2, 0, 3]);
        assert_eq!(z.total(), 5);
        assert_eq!(z.block_of(2), 2);
    }

    #[test]
    fn dense_roundtrip_drops_empty_blocks() {
        let mut d = MinPlusMatrix::identity(6);
        d.set(0, 5, 2.0);
        d.set(5, 0, 2.0);
        let bm = BlockedMatrix::from_dense(&d, Blocking::uniform(6, 2));
        assert!(bm.block(1, 2).is_none()); // rows 2-3 × cols 4-5 all ∞
        assert!(bm.block(0, 2).is_some());
        assert_eq!(bm.to_dense(), d);
    }

    #[test]
    fn blocked_fw_matches_classical_for_any_order() {
        for seed in 0..5u64 {
            let n = 12;
            let a = random_sym(n, 0.4, seed + 1);
            let mut reference = a.clone();
            fw_in_place(&mut reference);
            for order in [vec![0, 1, 2, 3], vec![3, 2, 1, 0], vec![2, 0, 3, 1]] {
                let mut bm = BlockedMatrix::from_dense(&a, Blocking::uniform(n, 3));
                bm.blocked_fw(&order);
                let got = bm.to_dense();
                // the blocked algorithm leaves a 0 diagonal like fw_in_place
                assert!(got.max_diff(&reference) < 1e-9, "seed {seed} order {order:?}");
            }
        }
    }

    #[test]
    fn blocked_fw_uneven_blocks() {
        let n = 11;
        let a = random_sym(n, 0.5, 77);
        let mut reference = a.clone();
        fw_in_place(&mut reference);
        let mut bm = BlockedMatrix::from_dense(&a, Blocking::new(vec![1, 4, 0, 3, 3]));
        bm.blocked_fw(&[4, 0, 2, 3, 1]);
        assert!(bm.to_dense().max_diff(&reference) < 1e-9);
    }

    #[test]
    fn blocked_fw_skips_empty_blocks() {
        // two 3-cliques joined via the last vertex (paper Fig. 1 shape):
        // block structure {0,1,2}, {3,4,5}, {6} has empty cross blocks.
        let mut a = MinPlusMatrix::empty(7, 7);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 6), (5, 6)] {
            a.set(u, v, 1.0);
            a.set(v, u, 1.0);
        }
        let blocking = Blocking::new(vec![3, 3, 1]);
        // eliminate the separator block LAST: cross blocks stay empty longer
        let mut sparse = BlockedMatrix::from_dense(&a, blocking.clone());
        let s_good = sparse.blocked_fw(&[0, 1, 2]);
        // eliminate the separator FIRST: cross blocks fill immediately
        let mut dense = BlockedMatrix::from_dense(&a, blocking);
        let s_bad = dense.blocked_fw(&[2, 0, 1]);
        assert!(s_good.block_skips > s_bad.block_skips);
        assert!(s_good.ops < s_bad.ops);
        // both orders still give correct APSP
        let mut reference = a.clone();
        fw_in_place(&mut reference);
        assert!(sparse.to_dense().max_diff(&reference) < 1e-9);
        assert!(dense.to_dense().max_diff(&reference) < 1e-9);
    }

    #[test]
    fn disconnected_stays_disconnected() {
        let mut a = MinPlusMatrix::empty(4, 4);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(2, 3, 1.0);
        a.set(3, 2, 1.0);
        let mut bm = BlockedMatrix::from_dense(&a, Blocking::uniform(4, 2));
        bm.blocked_fw(&[0, 1]);
        let d = bm.to_dense();
        assert_eq!(d.get(0, 2), INF);
        assert_eq!(d.get(0, 1), 1.0);
        assert_eq!(d.get(2, 3), 1.0);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn bad_pivot_order_panics() {
        let mut bm = BlockedMatrix::empty(Blocking::uniform(4, 2));
        bm.blocked_fw(&[0, 0]);
    }
}
