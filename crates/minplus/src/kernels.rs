//! Scalar kernels: min-plus GEMM and the classical Floyd–Warshall closure.
//!
//! Every kernel returns the exact number of scalar relaxations
//! (`c = min(c, a + b)`) it executed; rows/entries skipped through the `∞`
//! fast path are not counted. These counts feed the paper's computation
//! comparisons (SuperFW vs classical FW, §2/§4).
//!
//! Each kernel additionally records host-side perf counters (ops, ∞-row
//! skips, approximate bytes touched) into the global metrics registry —
//! once per call, see [`crate::perf`].

use crate::matrix::MinPlusMatrix;
use crate::perf;
use crate::INF;
use std::sync::atomic::{AtomicU64, Ordering};

/// `C ⊕= A ⊗ B` (min-plus product accumulate). Returns the scalar-op count.
///
/// Loop order `i-k-j` with an `∞` skip on `A[i][k]`, so structurally empty
/// operands cost nothing — this is what makes the §4.1 empty-block
/// avoidance measurable.
///
/// ```
/// use apsp_minplus::{gemm, MinPlusMatrix, INF};
///
/// let a = MinPlusMatrix::from_raw(2, 2, vec![0.0, 1.0, INF, 0.0]);
/// let b = MinPlusMatrix::from_raw(2, 2, vec![5.0, INF, 2.0, 0.0]);
/// let mut c = MinPlusMatrix::empty(2, 2);
/// gemm(&mut c, &a, &b);
/// assert_eq!(c.get(0, 0), 3.0); // min(0+5, 1+2)
/// ```
///
/// # Panics
/// Panics on shape mismatch or when `C` aliases would be required (pass
/// distinct `&mut`/`&` — aliasing is impossible in safe Rust anyway).
pub fn gemm(c: &mut MinPlusMatrix, a: &MinPlusMatrix, b: &MinPlusMatrix) -> u64 {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    assert_eq!(c.rows(), a.rows(), "output row mismatch");
    assert_eq!(c.cols(), b.cols(), "output col mismatch");
    let (m, kk, n) = (a.rows(), a.cols(), b.cols());
    let (av, bv) = (a.as_slice(), b.as_slice());
    let cv = c.as_mut_slice();
    let mut ops = 0u64;
    let mut skips = 0u64;
    for i in 0..m {
        let crow = &mut cv[i * n..(i + 1) * n];
        for k in 0..kk {
            let aik = av[i * kk + k];
            if aik == INF {
                skips += 1;
                continue;
            }
            let brow = &bv[k * n..(k + 1) * n];
            ops += n as u64;
            for j in 0..n {
                let via = aik + brow[j];
                if via < crow[j] {
                    crow[j] = via;
                }
            }
        }
    }
    perf::record_gemm(ops, skips, (m * kk) as u64);
    ops
}

/// Parallel variant of [`gemm`] splitting output rows across threads.
/// Returns the scalar-op count. Falls back to [`gemm`] for small outputs.
pub fn gemm_parallel(c: &mut MinPlusMatrix, a: &MinPlusMatrix, b: &MinPlusMatrix) -> u64 {
    assert_eq!(a.cols(), b.rows(), "inner dimension mismatch");
    assert_eq!(c.rows(), a.rows(), "output row mismatch");
    assert_eq!(c.cols(), b.cols(), "output col mismatch");
    let (m, kk, n) = (a.rows(), a.cols(), b.cols());
    if m * n < 64 * 64 {
        return gemm(c, a, b);
    }
    let rows_per_chunk = m.div_ceil(apsp_par::num_threads()).max(1);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let ops = AtomicU64::new(0);
    let skips = AtomicU64::new(0);
    apsp_par::par_chunks_mut(c.as_mut_slice(), rows_per_chunk * n, |start, chunk| {
        let i0 = start / n;
        let rows = chunk.len() / n;
        let mut local = 0u64;
        let mut local_skips = 0u64;
        for r in 0..rows {
            let i = i0 + r;
            let crow = &mut chunk[r * n..(r + 1) * n];
            for k in 0..kk {
                let aik = av[i * kk + k];
                if aik == INF {
                    local_skips += 1;
                    continue;
                }
                let brow = &bv[k * n..(k + 1) * n];
                local += n as u64;
                for j in 0..n {
                    let via = aik + brow[j];
                    if via < crow[j] {
                        crow[j] = via;
                    }
                }
            }
        }
        ops.fetch_add(local, Ordering::Relaxed);
        skips.fetch_add(local_skips, Ordering::Relaxed);
    });
    let ops = ops.into_inner();
    perf::record_gemm(ops, skips.into_inner(), (m * kk) as u64);
    ops
}

/// Classical Floyd–Warshall closure of a square block, in place
/// (the paper's `ClassicalFW(A(k,k))`, §3.3). The diagonal is first
/// `⊕`-ed with `0` (a vertex reaches itself for free). Returns the
/// scalar-op count.
pub fn fw_in_place(a: &mut MinPlusMatrix) -> u64 {
    assert_eq!(a.rows(), a.cols(), "FW needs a square block");
    let n = a.rows();
    for i in 0..n {
        a.relax(i, i, 0.0);
    }
    let buf = a.as_mut_slice();
    let mut ops = 0u64;
    let mut skips = 0u64;
    for k in 0..n {
        for i in 0..n {
            let dik = buf[i * n + k];
            if dik == INF {
                skips += 1;
                continue;
            }
            ops += n as u64;
            for j in 0..n {
                let via = dik + buf[k * n + j];
                if via < buf[i * n + j] {
                    buf[i * n + j] = via;
                }
            }
        }
    }
    perf::record_fw(ops, skips, (n * n) as u64);
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> MinPlusMatrix {
        let mut a = MinPlusMatrix::empty(3, 3);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(1, 2, 2.0);
        a.set(2, 1, 2.0);
        a
    }

    #[test]
    fn gemm_simple_product() {
        // C = A ⊗ B with A = [0 1; ∞ 0], B = [5 ∞; 2 0]
        let a = MinPlusMatrix::from_raw(2, 2, vec![0.0, 1.0, INF, 0.0]);
        let b = MinPlusMatrix::from_raw(2, 2, vec![5.0, INF, 2.0, 0.0]);
        let mut c = MinPlusMatrix::empty(2, 2);
        let ops = gemm(&mut c, &a, &b);
        assert_eq!(c.get(0, 0), 3.0); // min(0+5, 1+2)
        assert_eq!(c.get(0, 1), 1.0); // 1+0
        assert_eq!(c.get(1, 0), 2.0); // 0+2
        assert_eq!(c.get(1, 1), 0.0);
        // row 1 skips k=0 (∞): 3 finite a-entries × 2 cols
        assert_eq!(ops, 6);
    }

    #[test]
    fn gemm_accumulates_into_c() {
        let a = MinPlusMatrix::from_raw(1, 1, vec![10.0]);
        let b = MinPlusMatrix::from_raw(1, 1, vec![10.0]);
        let mut c = MinPlusMatrix::from_raw(1, 1, vec![3.0]);
        gemm(&mut c, &a, &b);
        assert_eq!(c.get(0, 0), 3.0); // 20 does not beat 3
    }

    #[test]
    fn gemm_empty_operand_is_free() {
        let a = MinPlusMatrix::empty(8, 8);
        let b = MinPlusMatrix::identity(8);
        let mut c = MinPlusMatrix::empty(8, 8);
        assert_eq!(gemm(&mut c, &a, &b), 0);
        assert!(c.is_empty_block());
    }

    #[test]
    fn fw_closes_a_path() {
        let mut a = line3();
        let ops = fw_in_place(&mut a);
        assert!(ops > 0);
        assert_eq!(a.get(0, 2), 3.0);
        assert_eq!(a.get(2, 0), 3.0);
        for i in 0..3 {
            assert_eq!(a.get(i, i), 0.0);
        }
    }

    #[test]
    fn fw_matches_squaring_closure() {
        let mut rng = 123u64;
        let mut rnd = || {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((rng >> 33) % 100) as f64 / 10.0
        };
        for trial in 0..10 {
            let n = 2 + trial % 6;
            let mut a = MinPlusMatrix::empty(n, n);
            for i in 0..n {
                for j in 0..n {
                    if i != j && rnd() < 5.0 {
                        let w = rnd();
                        a.set(i, j, w);
                        a.set(j, i, w);
                    }
                }
            }
            let reference = a.closure_by_squaring();
            let mut fast = a.clone();
            fw_in_place(&mut fast);
            assert!(fast.max_diff(&reference) < 1e-9, "trial {trial}");
        }
    }

    #[test]
    fn parallel_gemm_matches_serial() {
        let n = 96;
        let a = MinPlusMatrix::from_fn(n, n, |i, j| ((i * 7 + j * 13) % 50) as f64);
        let b = MinPlusMatrix::from_fn(n, n, |i, j| ((i * 11 + j * 3) % 50) as f64);
        let mut c1 = MinPlusMatrix::empty(n, n);
        let mut c2 = MinPlusMatrix::empty(n, n);
        let ops1 = gemm(&mut c1, &a, &b);
        let ops2 = gemm_parallel(&mut c2, &a, &b);
        assert_eq!(c1, c2);
        assert_eq!(ops1, ops2);
    }

    #[test]
    fn fw_opcount_is_n_cubed_when_dense() {
        let n = 7;
        let mut a = MinPlusMatrix::from_fn(n, n, |i, j| (i + j) as f64);
        let ops = fw_in_place(&mut a);
        assert_eq!(ops, (n * n * n) as u64);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn gemm_shape_mismatch_panics() {
        let a = MinPlusMatrix::empty(2, 3);
        let b = MinPlusMatrix::empty(2, 3);
        let mut c = MinPlusMatrix::empty(2, 3);
        gemm(&mut c, &a, &b);
    }

    #[test]
    #[should_panic(expected = "square block")]
    fn fw_non_square_panics() {
        fw_in_place(&mut MinPlusMatrix::empty(2, 3));
    }
}
