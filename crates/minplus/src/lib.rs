#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! # apsp-minplus
//!
//! Dense kernels over the tropical `(min, +)` semiring: the matrix type,
//! the classical Floyd–Warshall block closure, the min-plus matrix product
//! ("semiring GEMM"), and the blocked Floyd–Warshall of §3.3 of the paper
//! with arbitrary pivot orders and structural-empty skipping (§4.1).
//!
//! All kernels return exact scalar-operation counts (one `min(x, a + b)`
//! relaxation = one op), which the workspace uses to reproduce the paper's
//! computation-reduction claims (SuperFW vs classical FW).

pub mod algebra;
pub mod blocked;
pub mod kernels;
pub mod matrix;
pub mod perf;
pub mod via;

pub use algebra::{closure_in, AlgebraMatrix, MaxMin, MinPlus, MostReliable, PathAlgebra};
pub use blocked::{BlockedMatrix, Blocking};
pub use kernels::{fw_in_place, gemm, gemm_parallel};
pub use matrix::MinPlusMatrix;
pub use via::{fw_with_via, ViaMatrix};

/// Scalar weight re-exported from the semiring's point of view.
pub type Weight = f64;

/// The additive identity (`⊕` identity): no path.
pub const INF: Weight = f64::INFINITY;
