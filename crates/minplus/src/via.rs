//! Classical Floyd–Warshall with *via* (intermediate-vertex) tracking —
//! the textbook predecessor scheme, kept at the dense-kernel level for
//! shared-memory users who want `O(1)`-per-hop path recovery without
//! consulting the graph (the distributed pipeline instead reconstructs
//! paths from distances alone, see `apsp_graph::paths`).

use crate::matrix::MinPlusMatrix;
use crate::INF;

/// Intermediate-vertex table: `via[i][j]` is a vertex strictly inside one
/// shortest `i → j` path, or `NONE` when the path is the direct edge
/// (or `i == j`, or unreachable).
#[derive(Clone, Debug)]
pub struct ViaMatrix {
    n: usize,
    via: Vec<u32>,
}

/// Sentinel: no intermediate vertex.
pub const NONE: u32 = u32::MAX;

impl ViaMatrix {
    fn new(n: usize) -> Self {
        ViaMatrix { n, via: vec![NONE; n * n] }
    }

    /// The recorded intermediate vertex for `(i, j)`, if any.
    pub fn get(&self, i: usize, j: usize) -> Option<usize> {
        let v = self.via[i * self.n + j];
        (v != NONE).then_some(v as usize)
    }

    /// Recovers a full shortest-path vertex sequence from the via table.
    /// `dist` must be the closed matrix the table was built with.
    /// Returns `None` for unreachable pairs.
    pub fn path(&self, dist: &MinPlusMatrix, src: usize, dst: usize) -> Option<Vec<usize>> {
        if src == dst {
            return Some(vec![src]);
        }
        if dist.get(src, dst) == INF {
            return None;
        }
        let mut out = vec![src];
        self.expand(src, dst, &mut out);
        out.push(dst);
        Some(out)
    }

    fn expand(&self, i: usize, j: usize, out: &mut Vec<usize>) {
        if let Some(k) = self.get(i, j) {
            self.expand(i, k, out);
            out.push(k);
            self.expand(k, j, out);
        }
    }
}

/// Floyd–Warshall closure that also records, for every pair, the pivot
/// that last improved it. Returns the via table; `a` ends as the closure.
pub fn fw_with_via(a: &mut MinPlusMatrix) -> ViaMatrix {
    assert_eq!(a.rows(), a.cols(), "FW needs a square block");
    let n = a.rows();
    let mut via = ViaMatrix::new(n);
    for i in 0..n {
        a.relax(i, i, 0.0);
    }
    let buf = a.as_mut_slice();
    for k in 0..n {
        for i in 0..n {
            let dik = buf[i * n + k];
            if dik == INF {
                continue;
            }
            for j in 0..n {
                let cand = dik + buf[k * n + j];
                if cand < buf[i * n + j] {
                    buf[i * n + j] = cand;
                    via.via[i * n + j] = if i == k || j == k { NONE } else { k as u32 };
                }
            }
        }
    }
    via
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: usize) -> MinPlusMatrix {
        let mut a = MinPlusMatrix::empty(n, n);
        for i in 0..n {
            let j = (i + 1) % n;
            a.set(i, j, 1.0);
            a.set(j, i, 1.0);
        }
        a
    }

    #[test]
    fn via_paths_have_correct_weight() {
        let mut a = ring(7);
        let adj = a.clone();
        let via = fw_with_via(&mut a);
        for i in 0..7 {
            for j in 0..7 {
                let path = via.path(&a, i, j).expect("ring is connected");
                assert_eq!(path.first(), Some(&i));
                assert_eq!(path.last(), Some(&j));
                // every hop is a finite adjacency entry; sum equals distance
                let mut total = 0.0;
                for h in path.windows(2) {
                    let w = adj.get(h[0], h[1]);
                    assert!(w.is_finite(), "hop {h:?} is not an edge");
                    total += w;
                }
                if i == j {
                    assert_eq!(total, 0.0);
                } else {
                    assert_eq!(total, a.get(i, j));
                }
            }
        }
    }

    #[test]
    fn direct_edges_have_no_via() {
        let mut a = ring(5);
        let via = fw_with_via(&mut a);
        assert_eq!(via.get(0, 1), None);
        // the long way around 0→2 goes via 1
        assert_eq!(via.get(0, 2), Some(1));
    }

    #[test]
    fn unreachable_pairs_yield_none() {
        let mut a = MinPlusMatrix::empty(3, 3);
        a.set(0, 1, 2.0);
        a.set(1, 0, 2.0);
        let via = fw_with_via(&mut a);
        assert_eq!(via.path(&a, 0, 2), None);
        assert_eq!(via.path(&a, 0, 0), Some(vec![0]));
        assert_eq!(via.path(&a, 0, 1), Some(vec![0, 1]));
    }

    #[test]
    fn random_matrices_match_plain_fw() {
        let mut state = 99u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 100) as f64 / 10.0
        };
        for _ in 0..5 {
            let n = 8;
            let mut a = MinPlusMatrix::empty(n, n);
            for i in 0..n {
                for j in 0..n {
                    if i != j && rnd() < 4.0 {
                        a.set(i, j, rnd());
                    }
                }
            }
            let mut plain = a.clone();
            crate::kernels::fw_in_place(&mut plain);
            let mut tracked = a.clone();
            let _ = fw_with_via(&mut tracked);
            assert!(plain.max_diff(&tracked) < 1e-12);
        }
    }
}
