//! Path algebras (Carré's "algebra for network routing problems", the
//! paper's reference \[8\]): the semiring abstraction behind APSP.
//!
//! The workspace's hot kernels stay specialized to `(min, +)` (the paper's
//! problem), but this module shows the same three-nested-loop structure
//! solves any *closed* path problem by swapping the algebra:
//!
//! * [`MinPlus`] — shortest paths: `⊕ = min`, `⊗ = +`;
//! * [`MaxMin`] — bottleneck (widest) paths: `⊕ = max`, `⊗ = min`;
//! * [`MostReliable`] — maximum-probability paths: `⊕ = max`, `⊗ = ×`.
//!
//! All three are idempotent and have no improving cycles on valid inputs
//! (non-negative lengths / capacities / probabilities in `[0, 1]`), so the
//! Floyd–Warshall-style closure [`closure_in`] is exact.

/// A path algebra over `f64` values: a semiring `(⊕, ⊗)` whose closure
/// solves an all-pairs path problem.
pub trait PathAlgebra: Copy + Send + Sync + 'static {
    /// The `⊕` identity — "no path".
    const ZERO: f64;
    /// The `⊗` identity — "the empty path".
    const ONE: f64;
    /// Path choice: combines two alternative path values.
    fn plus(a: f64, b: f64) -> f64;
    /// Path extension: concatenates path values.
    fn times(a: f64, b: f64) -> f64;
    /// Fast-path test: `a` is the annihilating "no path" value.
    fn is_zero(a: f64) -> bool {
        a == Self::ZERO
    }
}

/// Shortest paths: `(min, +)` with `∞` as "no path".
#[derive(Clone, Copy, Debug)]
pub struct MinPlus;

impl PathAlgebra for MinPlus {
    const ZERO: f64 = f64::INFINITY;
    const ONE: f64 = 0.0;
    #[inline]
    fn plus(a: f64, b: f64) -> f64 {
        a.min(b)
    }
    #[inline]
    fn times(a: f64, b: f64) -> f64 {
        a + b
    }
}

/// Bottleneck (widest) paths: `(max, min)` over capacities `≥ 0`;
/// "no path" carries zero capacity, the empty path infinite capacity.
#[derive(Clone, Copy, Debug)]
pub struct MaxMin;

impl PathAlgebra for MaxMin {
    const ZERO: f64 = 0.0;
    const ONE: f64 = f64::INFINITY;
    #[inline]
    fn plus(a: f64, b: f64) -> f64 {
        a.max(b)
    }
    #[inline]
    fn times(a: f64, b: f64) -> f64 {
        a.min(b)
    }
}

/// Most-reliable paths: `(max, ×)` over success probabilities in `[0, 1]`.
#[derive(Clone, Copy, Debug)]
pub struct MostReliable;

impl PathAlgebra for MostReliable {
    const ZERO: f64 = 0.0;
    const ONE: f64 = 1.0;
    #[inline]
    fn plus(a: f64, b: f64) -> f64 {
        a.max(b)
    }
    #[inline]
    fn times(a: f64, b: f64) -> f64 {
        a * b
    }
}

/// A dense square matrix over an arbitrary path algebra (row-major).
/// Thin — the production `(min,+)` kernels live in [`crate::matrix`];
/// this type exists to demonstrate and test algebra-genericity.
#[derive(Clone, Debug, PartialEq)]
pub struct AlgebraMatrix<A: PathAlgebra> {
    n: usize,
    data: Vec<f64>,
    _algebra: std::marker::PhantomData<A>,
}

impl<A: PathAlgebra> AlgebraMatrix<A> {
    /// The all-"no path" matrix with an `⊗`-identity diagonal.
    pub fn identity(n: usize) -> Self {
        let mut data = vec![A::ZERO; n * n];
        for i in 0..n {
            data[i * n + i] = A::ONE;
        }
        AlgebraMatrix { n, data, _algebra: std::marker::PhantomData }
    }

    /// Builds from a closure.
    pub fn from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::identity(n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    m.set(i, j, f(i, j));
                }
            }
        }
        m
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Entry mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
    }

    /// `⊕`-accumulating product: `C ⊕= A ⊗ B`. Returns scalar-op count.
    pub fn gemm_into(c: &mut Self, a: &Self, b: &Self) -> u64 {
        let n = a.n;
        assert_eq!(n, b.n);
        assert_eq!(n, c.n);
        let mut ops = 0;
        for i in 0..n {
            for k in 0..n {
                let aik = a.get(i, k);
                if A::is_zero(aik) {
                    continue;
                }
                ops += n as u64;
                for j in 0..n {
                    let via = A::times(aik, b.get(k, j));
                    c.set(i, j, A::plus(c.get(i, j), via));
                }
            }
        }
        ops
    }

    /// Reference closure by repeated squaring: `(A ⊕ I)^(2^⌈log n⌉)`.
    pub fn closure_by_squaring(&self) -> Self {
        let mut d = self.clone();
        for i in 0..self.n {
            d.set(i, i, A::plus(d.get(i, i), A::ONE));
        }
        let mut steps = 0usize;
        while (1usize << steps) < self.n.max(1) {
            steps += 1;
        }
        for _ in 0..steps {
            let mut next = d.clone();
            Self::gemm_into(&mut next, &d, &d);
            d = next;
        }
        d
    }
}

/// Floyd–Warshall-style in-place closure over any path algebra —
/// the generic form of the paper's `ClassicalFW`. Exact for idempotent
/// algebras without improving cycles. Returns the scalar-op count.
///
/// ```
/// use apsp_minplus::algebra::{closure_in, AlgebraMatrix, MaxMin, PathAlgebra};
///
/// // widest paths: 0-1 wide (10), 1-2 narrow (2), 0-2 medium (5)
/// let mut caps = AlgebraMatrix::<MaxMin>::identity(3);
/// for (u, v, c) in [(0, 1, 10.0), (1, 2, 2.0), (0, 2, 5.0)] {
///     caps.set(u, v, c);
///     caps.set(v, u, c);
/// }
/// closure_in(&mut caps);
/// assert_eq!(caps.get(1, 2), 5.0); // 1 → 0 → 2 beats the narrow link
/// ```
pub fn closure_in<A: PathAlgebra>(a: &mut AlgebraMatrix<A>) -> u64 {
    let n = a.n();
    for i in 0..n {
        let d = A::plus(a.get(i, i), A::ONE);
        a.set(i, i, d);
    }
    let mut ops = 0;
    for k in 0..n {
        for i in 0..n {
            let dik = a.get(i, k);
            if A::is_zero(dik) {
                continue;
            }
            ops += n as u64;
            for j in 0..n {
                let via = A::times(dik, a.get(k, j));
                a.set(i, j, A::plus(a.get(i, j), via));
            }
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym_edges(n: usize, edges: &[(usize, usize, f64)], zero: f64) -> Vec<f64> {
        let mut m = vec![zero; n * n];
        for &(u, v, w) in edges {
            m[u * n + v] = w;
            m[v * n + u] = w;
        }
        m
    }

    #[test]
    fn minplus_algebra_matches_specialized_kernel() {
        let n = 8;
        let edges = [(0, 1, 2.0), (1, 2, 3.0), (2, 3, 1.0), (3, 4, 4.0), (0, 4, 20.0), (5, 6, 1.0)];
        let raw = sym_edges(n, &edges, f64::INFINITY);
        let mut generic = AlgebraMatrix::<MinPlus>::from_fn(n, |i, j| raw[i * n + j]);
        closure_in(&mut generic);
        let mut specialized =
            crate::MinPlusMatrix::from_fn(n, n, |i, j| if i == j { 0.0 } else { raw[i * n + j] });
        crate::fw_in_place(&mut specialized);
        for i in 0..n {
            for j in 0..n {
                let (a, b) = (generic.get(i, j), specialized.get(i, j));
                assert!(a == b || (a.is_infinite() && b.is_infinite()), "({i},{j}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn bottleneck_widest_paths() {
        // capacities: 0-1 wide, 1-2 narrow, 0-2 medium
        let edges = [(0usize, 1usize, 10.0), (1, 2, 2.0), (0, 2, 5.0)];
        let raw = sym_edges(3, &edges, 0.0);
        let mut m = AlgebraMatrix::<MaxMin>::from_fn(3, |i, j| raw[i * 3 + j]);
        closure_in(&mut m);
        // widest 0→2: direct 5 beats min(10, 2) = 2
        assert_eq!(m.get(0, 2), 5.0);
        // widest 1→2: via 0: min(10, 5) = 5 beats direct 2
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.get(0, 0), f64::INFINITY, "empty path has unbounded capacity");
    }

    #[test]
    fn bottleneck_disconnected_is_zero() {
        let mut m = AlgebraMatrix::<MaxMin>::from_fn(4, |i, j| {
            if (i, j) == (0, 1) || (i, j) == (1, 0) {
                3.0
            } else {
                0.0
            }
        });
        closure_in(&mut m);
        assert_eq!(m.get(0, 2), 0.0);
        assert_eq!(m.get(0, 1), 3.0);
    }

    #[test]
    fn reliability_multiplies_along_paths() {
        let edges = [(0usize, 1usize, 0.9), (1, 2, 0.9), (0, 2, 0.5)];
        let raw = sym_edges(3, &edges, 0.0);
        let mut m = AlgebraMatrix::<MostReliable>::from_fn(3, |i, j| raw[i * 3 + j]);
        closure_in(&mut m);
        // two 0.9 hops (0.81) beat the direct 0.5
        assert!((m.get(0, 2) - 0.81).abs() < 1e-12);
        assert_eq!(m.get(0, 0), 1.0);
    }

    #[test]
    fn closure_matches_squaring_for_all_algebras() {
        fn check<A: PathAlgebra>(raw: &[f64], n: usize) {
            let base = AlgebraMatrix::<A>::from_fn(n, |i, j| raw[i * n + j]);
            let reference = base.closure_by_squaring();
            let mut fast = base.clone();
            closure_in(&mut fast);
            for i in 0..n {
                for j in 0..n {
                    let (a, b) = (fast.get(i, j), reference.get(i, j));
                    assert!(
                        a == b || (a.is_infinite() && b.is_infinite()),
                        "({i},{j}): {a} vs {b}"
                    );
                }
            }
        }
        let n = 7;
        let mut state = 5u64;
        let mut rnd = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 100) as f64 / 100.0
        };
        let mut lengths = vec![f64::INFINITY; n * n];
        let mut caps = vec![0.0; n * n];
        let mut probs = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                if rnd() < 0.5 {
                    let w = rnd();
                    lengths[i * n + j] = 1.0 + w;
                    lengths[j * n + i] = 1.0 + w;
                    caps[i * n + j] = w;
                    caps[j * n + i] = w;
                    probs[i * n + j] = w;
                    probs[j * n + i] = w;
                }
            }
        }
        check::<MinPlus>(&lengths, n);
        check::<MaxMin>(&caps, n);
        check::<MostReliable>(&probs, n);
    }

    #[test]
    fn gemm_identity_laws() {
        let m = AlgebraMatrix::<MaxMin>::from_fn(4, |i, j| ((i + j) % 5) as f64);
        let id = AlgebraMatrix::<MaxMin>::identity(4);
        let mut out = AlgebraMatrix::<MaxMin>::from_fn(4, |_, _| MaxMin::ZERO);
        for i in 0..4 {
            out.set(i, i, MaxMin::ZERO); // start from the ⊕-identity everywhere
        }
        AlgebraMatrix::gemm_into(&mut out, &id, &m);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(out.get(i, j), m.get(i, j), "({i},{j})");
            }
        }
    }
}
