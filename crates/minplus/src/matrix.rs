//! Dense rectangular matrices over the `(min, +)` semiring.

use crate::{Weight, INF};

/// A dense `rows × cols` matrix of path weights, row-major.
///
/// The semiring operations are `x ⊕ y = min(x, y)` (with identity `∞`) and
/// `x ⊗ y = x + y` (with identity `0`). A structurally empty block is one
/// whose entries are all `∞`.
#[derive(Clone, Debug, PartialEq)]
pub struct MinPlusMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Weight>,
}

impl MinPlusMatrix {
    /// All-`∞` matrix (the `⊕` identity element of its shape).
    pub fn empty(rows: usize, cols: usize) -> Self {
        MinPlusMatrix { rows, cols, data: vec![INF; rows * cols] }
    }

    /// Square matrix with `0` diagonal and `∞` elsewhere (the `⊗` identity).
    pub fn identity(n: usize) -> Self {
        let mut m = Self::empty(n, n);
        for i in 0..n {
            m.set(i, i, 0.0);
        }
        m
    }

    /// Wraps a row-major buffer.
    ///
    /// # Panics
    /// Panics when `data.len() != rows * cols`.
    pub fn from_raw(rows: usize, cols: usize, data: Vec<Weight>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer shape mismatch");
        MinPlusMatrix { rows, cols, data }
    }

    /// Builds from a closure `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Weight) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        MinPlusMatrix { rows, cols, data }
    }

    /// Row count.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of entries (the message word count when transmitted).
    #[inline]
    pub fn words(&self) -> usize {
        self.data.len()
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> Weight {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Entry mutator.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, w: Weight) {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = w;
    }

    /// `⊕`-assigns one entry: keeps the minimum.
    #[inline]
    pub fn relax(&mut self, i: usize, j: usize, w: Weight) {
        let cell = &mut self.data[i * self.cols + j];
        if w < *cell {
            *cell = w;
        }
    }

    /// Row slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[Weight] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Raw buffer.
    #[inline]
    pub fn as_slice(&self) -> &[Weight] {
        &self.data
    }

    /// Mutable raw buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Weight] {
        &mut self.data
    }

    /// Consumes the matrix, returning its buffer.
    pub fn into_vec(self) -> Vec<Weight> {
        self.data
    }

    /// Entrywise `⊕` with a same-shape matrix.
    pub fn min_assign(&mut self, other: &MinPlusMatrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            if b < *a {
                *a = b;
            }
        }
    }

    /// `true` when every entry is `∞` (structurally empty block, §4.1).
    pub fn is_empty_block(&self) -> bool {
        self.data.iter().all(|&w| w == INF)
    }

    /// Number of finite entries.
    pub fn finite_entries(&self) -> usize {
        self.data.iter().filter(|w| w.is_finite()).count()
    }

    /// Transposed copy.
    pub fn transposed(&self) -> MinPlusMatrix {
        let mut t = MinPlusMatrix::empty(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }

    /// `true` when square and symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let (a, b) = (self.get(i, j), self.get(j, i));
                let both_inf = a == INF && b == INF;
                if !both_inf && (a - b).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Maximum absolute difference with another matrix (∞ on a finite/∞
    /// mismatch) — test helper.
    pub fn max_diff(&self, other: &MinPlusMatrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        let mut worst = 0.0f64;
        for (&a, &b) in self.data.iter().zip(&other.data) {
            if (a == INF) != (b == INF) {
                return f64::INFINITY;
            }
            if a != INF {
                worst = worst.max((a - b).abs());
            }
        }
        worst
    }

    /// Semiring closure by repeated squaring: `A* = (A ⊕ I)^(2^⌈log n⌉)`.
    /// Reference implementation for testing `fw_in_place`.
    pub fn closure_by_squaring(&self) -> MinPlusMatrix {
        assert_eq!(self.rows, self.cols, "closure needs a square matrix");
        let n = self.rows;
        let mut d = self.clone();
        for i in 0..n {
            d.relax(i, i, 0.0);
        }
        let mut steps = 0usize;
        while (1usize << steps) < n.max(1) {
            steps += 1;
        }
        for _ in 0..steps {
            let mut next = d.clone();
            crate::kernels::gemm(&mut next, &d, &d);
            d = next;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_identity() {
        let e = MinPlusMatrix::empty(2, 3);
        assert!(e.is_empty_block());
        assert_eq!(e.words(), 6);
        let i = MinPlusMatrix::identity(3);
        assert!(!i.is_empty_block());
        assert_eq!(i.finite_entries(), 3);
        assert_eq!(i.get(1, 1), 0.0);
        assert_eq!(i.get(0, 1), INF);
    }

    #[test]
    fn relax_and_min_assign() {
        let mut a = MinPlusMatrix::empty(2, 2);
        a.relax(0, 1, 5.0);
        a.relax(0, 1, 7.0);
        assert_eq!(a.get(0, 1), 5.0);
        let mut b = MinPlusMatrix::empty(2, 2);
        b.set(0, 1, 2.0);
        b.set(1, 0, 9.0);
        a.min_assign(&b);
        assert_eq!(a.get(0, 1), 2.0);
        assert_eq!(a.get(1, 0), 9.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = MinPlusMatrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64);
        let t = m.transposed();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), m.get(1, 2));
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn symmetry_detection() {
        let mut m = MinPlusMatrix::identity(2);
        m.set(0, 1, 3.0);
        assert!(!m.is_symmetric(1e-12));
        m.set(1, 0, 3.0);
        assert!(m.is_symmetric(1e-12));
        assert!(!MinPlusMatrix::empty(2, 3).is_symmetric(1e-12));
    }

    #[test]
    fn closure_of_path_matrix() {
        // 0 -1- 1 -2- 2
        let mut a = MinPlusMatrix::empty(3, 3);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(1, 2, 2.0);
        a.set(2, 1, 2.0);
        let c = a.closure_by_squaring();
        assert_eq!(c.get(0, 2), 3.0);
        assert_eq!(c.get(2, 0), 3.0);
        assert_eq!(c.get(0, 0), 0.0);
    }

    #[test]
    fn max_diff_detects_inf_mismatch() {
        let a = MinPlusMatrix::empty(1, 2);
        let mut b = MinPlusMatrix::empty(1, 2);
        b.set(0, 0, 1.0);
        assert_eq!(a.max_diff(&b), f64::INFINITY);
        assert_eq!(a.max_diff(&a), 0.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn min_assign_shape_mismatch_panics() {
        let mut a = MinPlusMatrix::empty(1, 2);
        a.min_assign(&MinPlusMatrix::empty(2, 1));
    }
}
