//! Kernel perf counters: how much work the min-plus kernels actually did
//! on the host.
//!
//! Counters are recorded **once per kernel call** (never inside an inner
//! loop — a handful of relaxed atomic adds per `gemm`), into the global
//! [`apsp_metrics`] registry. They are completely separate from the §3.1
//! cost ledgers: a `Comm` clock counts critical-path semiring ops on the
//! *simulated machine*, while these counters sum host-side work over
//! every thread. `minplus_ops` and the cost ledgers agree per call by
//! construction (both come from the kernel's return value); the skip and
//! bytes-touched counters exist only here.

use apsp_metrics::{global, Counter, Histogram};
use std::sync::{Arc, OnceLock};

/// The registered kernel counters (see module docs for semantics).
pub struct KernelCounters {
    /// `gemm`/`gemm_parallel` invocations.
    pub gemm_calls: Arc<Counter>,
    /// Scalar `min(c, a + b)` relaxations executed by GEMM kernels.
    pub gemm_ops: Arc<Counter>,
    /// Per-call GEMM op distribution (log2 buckets).
    pub gemm_ops_hist: Arc<Histogram>,
    /// `fw_in_place` invocations.
    pub fw_calls: Arc<Counter>,
    /// Scalar relaxations executed by the FW closure.
    pub fw_ops: Arc<Counter>,
    /// Inner rows skipped through the `∞` fast path (GEMM `A[i][k] = ∞`
    /// and FW `d[i][k] = ∞` skips).
    pub inf_row_skips: Arc<Counter>,
    /// Approximate bytes touched by the kernels: 8 bytes per operand
    /// scan entry plus 16 per relaxation (read + read-modify-write).
    pub bytes_touched: Arc<Counter>,
    /// Block-level updates performed by `blocked_fw`.
    pub block_updates: Arc<Counter>,
    /// Block-level updates skipped because an operand block was
    /// structurally empty (§4.1 avoidance, measured).
    pub block_skips: Arc<Counter>,
}

/// The process-wide kernel counters (registered on first use).
pub fn counters() -> &'static KernelCounters {
    static COUNTERS: OnceLock<KernelCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let r = global();
        KernelCounters {
            gemm_calls: r
                .counter("apsp_minplus_gemm_calls_total", "Min-plus GEMM kernel invocations."),
            gemm_ops: r.counter(
                "apsp_minplus_gemm_ops_total",
                "Scalar min-plus relaxations executed by GEMM kernels.",
            ),
            gemm_ops_hist: r.histogram(
                "apsp_minplus_gemm_ops",
                "Per-call GEMM scalar-op distribution (log2 buckets).",
            ),
            fw_calls: r.counter(
                "apsp_minplus_fw_calls_total",
                "In-place Floyd-Warshall closure invocations.",
            ),
            fw_ops: r.counter(
                "apsp_minplus_fw_ops_total",
                "Scalar relaxations executed by the FW closure.",
            ),
            inf_row_skips: r.counter(
                "apsp_minplus_inf_row_skips_total",
                "Inner rows skipped through the infinity fast path.",
            ),
            bytes_touched: r.counter(
                "apsp_minplus_bytes_touched_total",
                "Approximate bytes touched by min-plus kernels.",
            ),
            block_updates: r.counter(
                "apsp_minplus_block_updates_total",
                "Block-level updates performed by blocked FW.",
            ),
            block_skips: r.counter(
                "apsp_minplus_block_skips_total",
                "Block-level updates skipped as structurally empty.",
            ),
        }
    })
}

/// Records one GEMM call: `ops` relaxations, `skips` ∞-skipped rows,
/// `scanned` operand entries read while scanning.
#[inline]
pub(crate) fn record_gemm(ops: u64, skips: u64, scanned: u64) {
    let c = counters();
    c.gemm_calls.inc();
    c.gemm_ops.add(ops);
    c.gemm_ops_hist.record(ops);
    c.inf_row_skips.add(skips);
    c.bytes_touched.add(8 * scanned + 16 * ops);
}

/// Records one `fw_in_place` call.
#[inline]
pub(crate) fn record_fw(ops: u64, skips: u64, scanned: u64) {
    let c = counters();
    c.fw_calls.inc();
    c.fw_ops.add(ops);
    c.inf_row_skips.add(skips);
    c.bytes_touched.add(8 * scanned + 16 * ops);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{fw_in_place, gemm};
    use crate::matrix::MinPlusMatrix;
    use crate::INF;

    // counters are global and other tests in this binary also run
    // kernels concurrently, so assertions are on *deltas being at least*
    // the known contribution of this test's own calls.

    #[test]
    fn gemm_feeds_the_counters() {
        let c = counters();
        let (calls0, ops0, skips0, bytes0) =
            (c.gemm_calls.get(), c.gemm_ops.get(), c.inf_row_skips.get(), c.bytes_touched.get());
        let a = MinPlusMatrix::from_raw(2, 2, vec![0.0, 1.0, INF, 0.0]);
        let b = MinPlusMatrix::from_raw(2, 2, vec![5.0, INF, 2.0, 0.0]);
        let mut out = MinPlusMatrix::empty(2, 2);
        let ops = gemm(&mut out, &a, &b);
        assert_eq!(ops, 6);
        assert!(c.gemm_calls.get() > calls0);
        assert!(c.gemm_ops.get() >= ops0 + 6);
        assert!(c.inf_row_skips.get() > skips0, "one ∞ entry in A");
        // scanned = 4 entries of A; 8*4 + 16*6 = 128
        assert!(c.bytes_touched.get() >= bytes0 + 128);
    }

    #[test]
    fn fw_feeds_the_counters() {
        let c = counters();
        let (calls0, ops0) = (c.fw_calls.get(), c.fw_ops.get());
        let mut a = MinPlusMatrix::from_fn(4, 4, |i, j| (i + j) as f64);
        let ops = fw_in_place(&mut a);
        assert_eq!(ops, 64);
        assert!(c.fw_calls.get() > calls0);
        assert!(c.fw_ops.get() >= ops0 + 64);
    }
}
