//! Concurrency stress for the metrics registry: writer threads hammer a
//! shared counter and histogram while a reader snapshots continuously.
//! The registry's contract under contention is (a) nothing is lost —
//! joined totals are exact — and (b) every snapshot is a coherent
//! point-in-time view whose counters only ever move forward.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use apsp_metrics::registry::Registry;

const WRITERS: usize = 8;
const ITERS: u64 = 20_000;

#[test]
fn totals_are_exact_under_contention() {
    let reg = Registry::new();
    let shared = reg.counter("stress_shared_total", "One counter, all writers.");
    let hist = reg.histogram("stress_hist", "All writers record here.");
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let shared = Arc::clone(&shared);
            let hist = Arc::clone(&hist);
            let reg = &reg;
            scope.spawn(move || {
                // a labeled series per thread exercises the registry's
                // interior map under concurrent registration
                let own = reg.counter_with(
                    "stress_per_writer_total",
                    "One series per writer.",
                    &[("writer", &w.to_string())],
                );
                for i in 0..ITERS {
                    shared.inc();
                    own.add(2);
                    hist.record(i % 1024);
                }
            });
        }
    });
    assert_eq!(shared.get(), WRITERS as u64 * ITERS);
    assert_eq!(hist.count(), WRITERS as u64 * ITERS);
    let per_iter_sum: u64 = (0..ITERS).map(|i| i % 1024).sum();
    assert_eq!(hist.sum(), WRITERS as u64 * per_iter_sum);
    // the snapshot agrees with the live handles once writers are done
    let snap = reg.snapshot();
    assert_eq!(snap.counter_value("stress_shared_total"), WRITERS as u64 * ITERS);
    let family = snap
        .families
        .iter()
        .find(|f| f.name == "stress_per_writer_total")
        .expect("labeled family registered by the writer threads");
    assert_eq!(family.samples.len(), WRITERS);
}

#[test]
fn snapshots_are_monotone_while_writers_run() {
    let reg = Registry::new();
    let counter = reg.counter("stress_monotone_total", "Watched by the reader.");
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for _ in 0..WRITERS {
            let counter = Arc::clone(&counter);
            scope.spawn(move || {
                for _ in 0..ITERS {
                    counter.inc();
                }
            });
        }
        let reader = scope.spawn(|| {
            let mut last = 0u64;
            let mut observations = 0u64;
            while !done.load(Ordering::Acquire) {
                let now = reg.snapshot().counter_value("stress_monotone_total");
                assert!(now >= last, "counter went backwards: {last} -> {now}");
                assert!(now <= WRITERS as u64 * ITERS, "counter overshot: {now}");
                last = now;
                observations += 1;
            }
            observations
        });
        // writers are the non-reader spawns; wait for them by observing
        // the exact total, then release the reader
        loop {
            if counter.get() == WRITERS as u64 * ITERS {
                break;
            }
            std::thread::yield_now();
        }
        done.store(true, Ordering::Release);
        let observations = reader.join().expect("reader thread panicked");
        assert!(observations > 0, "reader never got to snapshot");
    });
    assert_eq!(reg.snapshot().counter_value("stress_monotone_total"), WRITERS as u64 * ITERS);
}
