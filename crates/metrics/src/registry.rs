//! The metric registry: named counters, gauges and histograms with
//! optional label sets, plus deterministic snapshots for the exporters.

use crate::histogram::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// What kind of metric a family is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter.
    Counter,
    /// Settable gauge.
    Gauge,
    /// Log2-bucketed histogram.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` word.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct FamilyEntry {
    help: String,
    kind: MetricKind,
    // label-set (sorted, rendered) → metric; the unlabeled series uses ""
    series: BTreeMap<String, (Vec<(String, String)>, Metric)>,
}

/// A named collection of metrics.
///
/// `enabled` gates only the *wall-clock timers* (they need `Instant::now`
/// syscalls); counters and histograms record unconditionally — they are
/// single relaxed atomic adds and keeping them always-on means `apsp
/// bench` never needs a warm-up pass to populate them.
pub struct Registry {
    enabled: AtomicBool,
    families: RwLock<BTreeMap<String, FamilyEntry>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry with wall-clock timing disabled.
    pub fn new() -> Self {
        Registry { enabled: AtomicBool::new(false), families: RwLock::new(BTreeMap::new()) }
    }

    /// Turns wall-clock timing on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns wall-clock timing off.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Is wall-clock timing on?
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Registers (or retrieves) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Registers (or retrieves) a counter with labels.
    ///
    /// # Panics
    /// Panics when `name` is already registered as a different kind.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.get_or_insert(name, help, labels, MetricKind::Counter, || {
            Metric::Counter(Arc::new(Counter::default()))
        }) {
            Metric::Counter(c) => c,
            _ => unreachable!("kind checked in get_or_insert"),
        }
    }

    /// Registers (or retrieves) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or retrieves) a gauge with labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.get_or_insert(name, help, labels, MetricKind::Gauge, || {
            Metric::Gauge(Arc::new(Gauge::default()))
        }) {
            Metric::Gauge(g) => g,
            _ => unreachable!("kind checked in get_or_insert"),
        }
    }

    /// Registers (or retrieves) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Registers (or retrieves) a histogram with labels.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.get_or_insert(name, help, labels, MetricKind::Histogram, || {
            Metric::Histogram(Arc::new(Histogram::new()))
        }) {
            Metric::Histogram(h) => h,
            _ => unreachable!("kind checked in get_or_insert"),
        }
    }

    fn get_or_insert(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
        make: impl FnOnce() -> Metric,
    ) -> Metric {
        let key = render_labels(labels);
        // fast path: read lock
        {
            let fams = self.families.read().expect("metrics registry poisoned");
            if let Some(fam) = fams.get(name) {
                assert_eq!(
                    fam.kind,
                    kind,
                    "metric {name} already registered as {}",
                    fam.kind.as_str()
                );
                if let Some((_, metric)) = fam.series.get(&key) {
                    return clone_metric(metric);
                }
            }
        }
        let mut fams = self.families.write().expect("metrics registry poisoned");
        let metric = make();
        let fam = fams.entry(name.to_string()).or_insert_with(|| FamilyEntry {
            help: help.to_string(),
            kind,
            series: BTreeMap::new(),
        });
        assert_eq!(fam.kind, kind, "metric {name} already registered as {}", fam.kind.as_str());
        let owned: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        let (_, stored) = fam.series.entry(key).or_insert_with(|| (owned, metric));
        clone_metric(stored)
    }

    /// Zeroes every registered metric (series stay registered). Used by
    /// `apsp bench` between workload cells.
    pub fn reset(&self) {
        let fams = self.families.read().expect("metrics registry poisoned");
        for fam in fams.values() {
            for (_, metric) in fam.series.values() {
                match metric {
                    Metric::Counter(c) => c.0.store(0, Ordering::Relaxed),
                    Metric::Gauge(g) => g.0.store(0, Ordering::Relaxed),
                    Metric::Histogram(h) => h.reset(),
                }
            }
        }
    }

    /// Deterministic point-in-time view of every registered series.
    pub fn snapshot(&self) -> Snapshot {
        let fams = self.families.read().expect("metrics registry poisoned");
        let families = fams
            .iter()
            .map(|(name, fam)| Family {
                name: name.clone(),
                help: fam.help.clone(),
                kind: fam.kind,
                samples: fam
                    .series
                    .values()
                    .map(|(labels, metric)| Sample {
                        labels: labels.clone(),
                        value: match metric {
                            Metric::Counter(c) => SampleValue::Counter(c.get()),
                            Metric::Gauge(g) => SampleValue::Gauge(g.get()),
                            Metric::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                        },
                    })
                    .collect(),
            })
            .collect();
        Snapshot { families }
    }
}

fn clone_metric(m: &Metric) -> Metric {
    match m {
        Metric::Counter(c) => Metric::Counter(Arc::clone(c)),
        Metric::Gauge(g) => Metric::Gauge(Arc::clone(g)),
        Metric::Histogram(h) => Metric::Histogram(Arc::clone(h)),
    }
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort();
    sorted.iter().map(|(k, v)| format!("{k}={v},")).collect()
}

/// One series' point-in-time value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SampleValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// One labeled series inside a family.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sample {
    /// Label pairs in registration order.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: SampleValue,
}

/// A metric family: one name, one kind, many label sets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Family {
    /// Family name (Prometheus conventions: `snake_case`, counters end in
    /// `_total`).
    pub name: String,
    /// One-line help text.
    pub help: String,
    /// Counter/gauge/histogram.
    pub kind: MetricKind,
    /// Series, in deterministic label order.
    pub samples: Vec<Sample>,
}

/// A deterministic point-in-time view of a whole registry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Families in name order.
    pub families: Vec<Family>,
}

impl Snapshot {
    /// Looks up an unlabeled (or single-series) counter value by name;
    /// `0` when absent. Convenience for tests and `apsp bench` deltas.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.families
            .iter()
            .find(|f| f.name == name)
            .and_then(|f| {
                f.samples.iter().find_map(|s| match &s.value {
                    SampleValue::Counter(v) => Some(*v),
                    _ => None,
                })
            })
            .unwrap_or(0)
    }
}

/// The process-wide registry every instrumented crate records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_registration_is_idempotent() {
        let r = Registry::new();
        let a = r.counter("x_total", "X.");
        let b = r.counter("x_total", "X.");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        assert_eq!(r.snapshot().counter_value("x_total"), 3);
    }

    #[test]
    fn labeled_series_are_distinct() {
        let r = Registry::new();
        let a = r.counter_with("y_total", "Y.", &[("phase", "a")]);
        let b = r.counter_with("y_total", "Y.", &[("phase", "b")]);
        a.inc();
        b.add(5);
        let snap = r.snapshot();
        let fam = &snap.families[0];
        assert_eq!(fam.samples.len(), 2);
        assert_eq!(fam.samples[0].labels, vec![("phase".to_string(), "a".to_string())]);
        assert_eq!(fam.samples[0].value, SampleValue::Counter(1));
        assert_eq!(fam.samples[1].value, SampleValue::Counter(5));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        r.counter("z", "Z.");
        r.gauge("z", "Z.");
    }

    #[test]
    fn gauge_set_and_add() {
        let r = Registry::new();
        let g = r.gauge("g", "G.");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn reset_zeroes_but_keeps_series() {
        let r = Registry::new();
        r.counter("c_total", "C.").add(9);
        r.histogram("h", "H.").record(4);
        r.reset();
        let snap = r.snapshot();
        assert_eq!(snap.counter_value("c_total"), 0);
        assert_eq!(snap.families.len(), 2);
    }

    #[test]
    fn enable_toggles() {
        let r = Registry::new();
        assert!(!r.is_enabled());
        r.enable();
        assert!(r.is_enabled());
        r.disable();
        assert!(!r.is_enabled());
    }

    #[test]
    fn snapshot_is_name_ordered() {
        let r = Registry::new();
        r.counter("b_total", "B.");
        r.counter("a_total", "A.");
        let names: Vec<_> = r.snapshot().families.iter().map(|f| f.name.clone()).collect();
        assert_eq!(names, ["a_total", "b_total"]);
    }

    #[test]
    fn concurrent_adds_do_not_lose_updates() {
        let r = Registry::new();
        let c = r.counter("race_total", "R.");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }
}
