#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

//! # apsp-metrics
//!
//! Wall-clock performance observability for the workspace — the *other*
//! half of the measurement story. The §3.1 cost ledgers in `apsp-simnet`
//! count the paper's machine-independent quantities (messages, words,
//! scalar ops on the critical path); this crate counts what actually
//! happens on the host: kernel perf counters, retransmission/recovery
//! totals, and phase-scoped wall-clock timers.
//!
//! Design constraints, in order:
//!
//! 1. **Neutral to the cost ledgers.** Nothing in this crate ever touches
//!    a `Clocks` value or a `Comm` — enabling metrics
//!    cannot change a single word of a `RunReport` or a `paper_report`
//!    table. A golden test in the workspace pins this byte-for-byte.
//! 2. **Cheap when off, cheap when on.** Counters are lock-free relaxed
//!    atomics recorded once per kernel call (never inside an inner loop).
//!    Wall-clock timers call `Instant::now()` only while the registry is
//!    [enabled](Registry::enable); disabled they are two relaxed loads.
//! 3. **Deterministic exposition.** Snapshots iterate a `BTreeMap`, so
//!    exporters emit families and series in a stable order.
//!
//! ```
//! use apsp_metrics::{global, export};
//!
//! global().counter("demo_events_total", "Demo events.").add(3);
//! let snap = global().snapshot();
//! let text = export::prometheus_text(&snap);
//! assert!(text.contains("demo_events_total 3"));
//! ```

pub mod export;
pub mod histogram;
pub mod registry;
pub mod timer;

pub use export::{jsonl, parse_prometheus, prometheus_text, summary_table};
pub use histogram::{bucket_index, bucket_upper_bound, Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use registry::{
    global, Counter, Family, Gauge, MetricKind, Registry, Sample, SampleValue, Snapshot,
};
pub use timer::{time_phase, time_phase_in, PhaseGuard};

/// Convenience: `global().counter(name, help)`.
pub fn counter(name: &str, help: &str) -> std::sync::Arc<Counter> {
    global().counter(name, help)
}

/// Convenience: `global().enable()` — turns wall-clock timing on.
pub fn enable() {
    global().enable();
}

/// Convenience: is the global registry's wall-clock timing on?
pub fn is_enabled() -> bool {
    global().is_enabled()
}
