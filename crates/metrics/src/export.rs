//! Exporters: Prometheus text exposition, JSONL, and a human summary —
//! plus a small exposition parser used by the round-trip tests and the
//! CLI's self-checks.

use crate::histogram::HistogramSnapshot;
use crate::registry::{SampleValue, Snapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Renders a snapshot in the Prometheus text exposition format
/// (version 0.0.4): `# HELP` / `# TYPE` headers, histograms as cumulative
/// `_bucket{le=...}` series plus `_sum` / `_count`.
pub fn prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    for fam in &snap.families {
        let _ = writeln!(out, "# HELP {} {}", fam.name, fam.help);
        let _ = writeln!(out, "# TYPE {} {}", fam.name, fam.kind.as_str());
        for s in &fam.samples {
            match &s.value {
                SampleValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {v}", fam.name, label_block(&s.labels, None));
                }
                SampleValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {v}", fam.name, label_block(&s.labels, None));
                }
                SampleValue::Histogram(h) => {
                    for (ub, cum) in h.cumulative() {
                        let le = ub.to_string();
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cum}",
                            fam.name,
                            label_block(&s.labels, Some(("le", &le)))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        fam.name,
                        label_block(&s.labels, Some(("le", "+Inf"))),
                        h.count
                    );
                    let _ =
                        writeln!(out, "{}_sum{} {}", fam.name, label_block(&s.labels, None), h.sum);
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        fam.name,
                        label_block(&s.labels, None),
                        h.count
                    );
                }
            }
        }
    }
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn labels_json(labels: &[(String, String)]) -> String {
    let pairs: Vec<String> =
        labels.iter().map(|(k, v)| format!("{}:{}", json_str(k), json_str(v))).collect();
    format!("{{{}}}", pairs.join(","))
}

/// Renders a snapshot as JSON Lines: one object per series, with the
/// family name, kind, labels, and the value (histograms carry
/// `count`/`sum`/cumulative `buckets`).
pub fn jsonl(snap: &Snapshot) -> String {
    let mut out = String::new();
    for fam in &snap.families {
        for s in &fam.samples {
            let head = format!(
                "{{\"name\":{},\"kind\":{},\"labels\":{}",
                json_str(&fam.name),
                json_str(fam.kind.as_str()),
                labels_json(&s.labels)
            );
            match &s.value {
                SampleValue::Counter(v) => {
                    let _ = writeln!(out, "{head},\"value\":{v}}}");
                }
                SampleValue::Gauge(v) => {
                    let _ = writeln!(out, "{head},\"value\":{v}}}");
                }
                SampleValue::Histogram(h) => {
                    let buckets: Vec<String> = h
                        .cumulative()
                        .iter()
                        .map(|(ub, cum)| format!("{{\"le\":{ub},\"cum\":{cum}}}"))
                        .collect();
                    let _ = writeln!(
                        out,
                        "{head},\"count\":{},\"sum\":{},\"buckets\":[{}]}}",
                        h.count,
                        h.sum,
                        buckets.join(",")
                    );
                }
            }
        }
    }
    out
}

fn fmt_labels_human(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        let pairs: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("{{{}}}", pairs.join(","))
    }
}

fn histogram_summary(h: &HistogramSnapshot) -> String {
    if h.count == 0 {
        return "count 0".to_string();
    }
    let mean = h.sum / h.count;
    format!("count {} / mean {} / sum {}", h.count, mean, h.sum)
}

/// Renders a snapshot as an aligned human-readable table (one row per
/// series; histograms show count/mean/sum). Phase wall timers render
/// their mean in milliseconds alongside the raw nanoseconds.
pub fn summary_table(snap: &Snapshot) -> String {
    let mut rows: Vec<(String, String)> = Vec::new();
    for fam in &snap.families {
        for s in &fam.samples {
            let name = format!("{}{}", fam.name, fmt_labels_human(&s.labels));
            let value = match &s.value {
                SampleValue::Counter(v) => v.to_string(),
                SampleValue::Gauge(v) => v.to_string(),
                SampleValue::Histogram(h) => {
                    let mut v = histogram_summary(h);
                    if fam.name.ends_with("_ns") && h.count > 0 {
                        let _ = write!(v, " ({:.3} ms mean)", h.sum as f64 / h.count as f64 / 1e6);
                    }
                    v
                }
            };
            rows.push((name, value));
        }
    }
    let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    let mut out = String::new();
    for (name, value) in rows {
        let _ = writeln!(out, "{name:<width$}  {value}");
    }
    out
}

/// A parsed Prometheus text exposition: sample key (name + rendered
/// label block, exactly as exposed) → value.
pub type ParsedExposition = BTreeMap<String, f64>;

/// Parses the subset of the Prometheus text format that
/// [`prometheus_text`] emits (and any exposition made of simple
/// `name{labels} value` lines). Returns sample-key → value.
///
/// # Errors
/// A line that is neither a comment, blank, nor `key value` is reported
/// with its line number.
pub fn parse_prometheus(text: &str) -> Result<ParsedExposition, String> {
    let mut out = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // the value is the text after the last space *outside* a label
        // block (label values may contain escaped spaces, ours don't)
        let split = line.rfind(' ').ok_or_else(|| format!("line {}: no value", lineno + 1))?;
        let (key, value) = line.split_at(split);
        let value = value.trim();
        let value: f64 = if value == "+Inf" {
            f64::INFINITY
        } else {
            value.parse().map_err(|e| format!("line {}: bad value {value}: {e}", lineno + 1))?
        };
        if out.insert(key.trim().to_string(), value).is_some() {
            return Err(format!("line {}: duplicate sample {key}", lineno + 1));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn demo_registry() -> Registry {
        let r = Registry::new();
        r.counter("apsp_demo_events_total", "Demo events.").add(42);
        r.counter_with("apsp_demo_labeled_total", "Labeled.", &[("phase", "solve")]).add(7);
        r.gauge("apsp_demo_ranks", "Ranks.").set(9);
        let h = r.histogram_with("apsp_demo_wall_ns", "Wall.", &[("phase", "solve")]);
        h.record(3);
        h.record(900);
        r
    }

    #[test]
    fn prometheus_text_shape() {
        let text = prometheus_text(&demo_registry().snapshot());
        assert!(text.contains("# TYPE apsp_demo_events_total counter"));
        assert!(text.contains("apsp_demo_events_total 42"));
        assert!(text.contains("apsp_demo_labeled_total{phase=\"solve\"} 7"));
        assert!(text.contains("# TYPE apsp_demo_ranks gauge"));
        assert!(text.contains("apsp_demo_wall_ns_bucket{phase=\"solve\",le=\"3\"} 1"));
        assert!(text.contains("apsp_demo_wall_ns_bucket{phase=\"solve\",le=\"1023\"} 2"));
        assert!(text.contains("apsp_demo_wall_ns_bucket{phase=\"solve\",le=\"+Inf\"} 2"));
        assert!(text.contains("apsp_demo_wall_ns_sum{phase=\"solve\"} 903"));
        assert!(text.contains("apsp_demo_wall_ns_count{phase=\"solve\"} 2"));
    }

    #[test]
    fn prometheus_roundtrip_parses_back_every_sample() {
        let snap = demo_registry().snapshot();
        let parsed = parse_prometheus(&prometheus_text(&snap)).expect("own exposition parses");
        assert_eq!(parsed["apsp_demo_events_total"], 42.0);
        assert_eq!(parsed["apsp_demo_labeled_total{phase=\"solve\"}"], 7.0);
        assert_eq!(parsed["apsp_demo_ranks"], 9.0);
        assert_eq!(parsed["apsp_demo_wall_ns_count{phase=\"solve\"}"], 2.0);
        assert_eq!(parsed["apsp_demo_wall_ns_sum{phase=\"solve\"}"], 903.0);
        // every cumulative bucket is bounded by the count, and +Inf equals it
        let count = parsed["apsp_demo_wall_ns_count{phase=\"solve\"}"];
        for (k, v) in parsed.iter().filter(|(k, _)| k.starts_with("apsp_demo_wall_ns_bucket")) {
            assert!(*v <= count, "{k} exceeds count");
        }
        assert_eq!(parsed["apsp_demo_wall_ns_bucket{phase=\"solve\",le=\"+Inf\"}"], count);
    }

    #[test]
    fn parse_rejects_garbage_and_duplicates() {
        assert!(parse_prometheus("no_value_here").is_err());
        assert!(parse_prometheus("x 1\nx 2").is_err());
        assert!(parse_prometheus("# just a comment\n\n").expect("comments ok").is_empty());
    }

    #[test]
    fn jsonl_one_object_per_line() {
        let text = jsonl(&demo_registry().snapshot());
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "not an object: {line}");
            assert!(line.contains("\"name\":"), "missing name: {line}");
        }
        assert!(text.contains("\"value\":42"));
        assert!(text.contains("\"count\":2,\"sum\":903"));
        assert!(text.contains("\"labels\":{\"phase\":\"solve\"}"));
    }

    #[test]
    fn summary_table_lists_every_series() {
        let text = summary_table(&demo_registry().snapshot());
        assert!(text.contains("apsp_demo_events_total"));
        assert!(text.contains("apsp_demo_wall_ns{phase=solve}"));
        assert!(text.contains("count 2"));
        assert!(text.contains("ms mean"));
    }

    #[test]
    fn label_escaping_survives_roundtrip() {
        let r = Registry::new();
        r.counter_with("esc_total", "E.", &[("w", "a\"b\\c")]).inc();
        let text = prometheus_text(&r.snapshot());
        let parsed = parse_prometheus(&text).expect("parses");
        assert_eq!(parsed["esc_total{w=\"a\\\"b\\\\c\"}"], 1.0);
    }
}
