//! Phase-scoped wall-clock timers.
//!
//! A [`PhaseGuard`] measures the wall time between its creation and drop
//! and records it (in nanoseconds) into the `apsp_phase_wall_ns`
//! histogram family, labeled by phase. Timing only happens while the
//! registry is [enabled](crate::Registry::enable) — the disabled path is
//! one relaxed load and never calls `Instant::now()`, so solvers can be
//! instrumented unconditionally.

use crate::registry::{global, Registry};
use std::time::Instant;

/// Histogram family phase timers record into.
pub const PHASE_WALL_NS: &str = "apsp_phase_wall_ns";

/// RAII wall-clock timer for one named phase; records on drop.
pub struct PhaseGuard {
    state: Option<(&'static Registry, String, Instant)>,
}

impl PhaseGuard {
    /// Stops the timer early and records; idempotent with drop.
    pub fn finish(mut self) {
        self.record();
    }

    fn record(&mut self) {
        if let Some((registry, phase, start)) = self.state.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            registry
                .histogram_with(
                    PHASE_WALL_NS,
                    "Wall-clock time per phase execution, in nanoseconds.",
                    &[("phase", &phase)],
                )
                .record(ns);
        }
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        self.record();
    }
}

/// Starts timing `phase` against `registry`; inert when the registry's
/// wall-clock timing is disabled.
pub fn time_phase_in(registry: &'static Registry, phase: &str) -> PhaseGuard {
    PhaseGuard {
        state: registry.is_enabled().then(|| (registry, phase.to_string(), Instant::now())),
    }
}

/// Starts timing `phase` against the [global](crate::global) registry.
pub fn time_phase(phase: &str) -> PhaseGuard {
    time_phase_in(global(), phase)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::SampleValue;

    // the global registry is shared (and raced) across the test binary,
    // so these tests run against private leaked registries.

    fn phase_count(registry: &Registry, phase: &str) -> u64 {
        let snap = registry.snapshot();
        let Some(fam) = snap.families.iter().find(|f| f.name == PHASE_WALL_NS) else {
            return 0;
        };
        fam.samples
            .iter()
            .filter(|s| s.labels == vec![("phase".to_string(), phase.to_string())])
            .map(|s| match &s.value {
                SampleValue::Histogram(h) => h.count,
                _ => 0,
            })
            .sum()
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let r: &'static Registry = Box::leak(Box::new(Registry::new()));
        {
            let _t = time_phase_in(r, "solve");
        }
        assert_eq!(phase_count(r, "solve"), 0);
        assert!(r.snapshot().families.is_empty(), "disabled timer must not even register");
    }

    #[test]
    fn enabled_registry_records_one_observation_per_guard() {
        let r: &'static Registry = Box::leak(Box::new(Registry::new()));
        r.enable();
        {
            let _t = time_phase_in(r, "solve");
        }
        let t = time_phase_in(r, "solve");
        t.finish();
        assert_eq!(phase_count(r, "solve"), 2);
    }
}
