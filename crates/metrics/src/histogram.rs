//! Log2-bucketed histograms.
//!
//! Bucket `i` counts recorded values `v` with `bit_length(v) == i`:
//! bucket 0 holds `v == 0`, bucket `i ≥ 1` holds `2^(i-1) ≤ v < 2^i`.
//! The inclusive upper bound of bucket `i` is therefore `2^i − 1`, which
//! is what the Prometheus `le` label reports. 65 buckets cover the whole
//! `u64` range exactly — there is no implicit overflow bucket to get the
//! tail wrong.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket count: one per possible `u64` bit length (0..=64).
pub const NUM_BUCKETS: usize = 65;

/// The bucket a value lands in: its bit length.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i` (`2^i − 1`), saturating at
/// `u64::MAX` for the last bucket.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A lock-free log2-bucketed histogram of `u64` observations.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations (wrapping on overflow, like Prometheus client
    /// integer sums).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Zeroes every bucket and the count/sum.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot (relaxed loads; exact when no
    /// concurrent writers, which is how exporters use it).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// Point-in-time view of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) counts, index = bit length.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Cumulative `(upper_bound, count ≤ upper_bound)` pairs, trimmed
    /// after the last non-empty bucket (the `+Inf` bucket an exporter
    /// appends covers the rest).
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let last = match self.buckets.iter().rposition(|&c| c > 0) {
            Some(i) => i,
            None => return Vec::new(),
        };
        let mut cum = 0u64;
        (0..=last)
            .map(|i| {
                cum += self.buckets[i];
                (bucket_upper_bound(i), cum)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // 0 is its own bucket
        assert_eq!(bucket_index(0), 0);
        // 1 = 2^0 starts bucket 1
        assert_eq!(bucket_index(1), 1);
        // each 2^k starts bucket k+1; 2^k − 1 ends bucket k
        for k in 1..64u32 {
            let p = 1u64 << k;
            assert_eq!(bucket_index(p), k as usize + 1, "2^{k}");
            assert_eq!(bucket_index(p - 1), k as usize, "2^{k} - 1");
        }
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn upper_bounds_match_bucket_contents() {
        // every value in bucket i is ≤ bucket_upper_bound(i), and the
        // smallest value of bucket i+1 is bucket_upper_bound(i) + 1
        for i in 0..64usize {
            let ub = bucket_upper_bound(i);
            assert_eq!(bucket_index(ub), i, "upper bound of bucket {i} is in bucket {i}");
            assert_eq!(bucket_index(ub.wrapping_add(1)), i + 1);
        }
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn record_lands_in_one_bucket_and_sums() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 9);
        assert_eq!(s.sum, 2072);
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 2); // 2, 3
        assert_eq!(s.buckets[3], 2); // 4, 7
        assert_eq!(s.buckets[4], 1); // 8
        assert_eq!(s.buckets[10], 1); // 1023
        assert_eq!(s.buckets[11], 1); // 1024
        assert_eq!(s.buckets.iter().sum::<u64>(), s.count, "each value in exactly one bucket");
    }

    #[test]
    fn cumulative_is_monotone_and_trimmed() {
        let h = Histogram::new();
        h.record(5);
        h.record(6);
        h.record(100);
        let cum = h.snapshot().cumulative();
        // trimmed at bucket 7 (100 has bit length 7, ub 127)
        assert_eq!(cum.last(), Some(&(127, 3)));
        let mut prev = 0;
        for &(_, c) in &cum {
            assert!(c >= prev);
            prev = c;
        }
        // the le=7 bucket holds both 5 and 6
        assert!(cum.contains(&(7, 2)));
    }

    #[test]
    fn empty_histogram_has_no_cumulative_rows() {
        assert!(Histogram::new().snapshot().cumulative().is_empty());
    }

    #[test]
    fn reset_zeroes() {
        let h = Histogram::new();
        h.record(42);
        h.reset();
        let s = h.snapshot();
        assert_eq!((s.count, s.sum), (0, 0));
        assert!(s.buckets.iter().all(|&c| c == 0));
    }
}
