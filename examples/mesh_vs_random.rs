//! The §5.5 message, demonstrated: the algorithm's communication advantage
//! is a function of the separator size. A mesh (`|S| = Θ(√n)`) enjoys the
//! full saving; an Erdős–Rényi graph of the same size (separators `Θ(n)`)
//! does not.
//!
//! ```text
//! cargo run --release --example mesh_vs_random
//! ```

use sparse_apsp::prelude::*;

fn solve(name: &str, g: &Csr) {
    let solver = SparseApsp::new(SparseApspConfig { height: 3, ..Default::default() });
    let run = solver.run(g);
    // always verify before reporting costs
    let reference = oracle::apsp_dijkstra(g);
    assert!(run.dist.first_mismatch(&reference, 1e-9).is_none());

    let s = run.ordering.max_separator();
    let r = &run.report;
    println!(
        "{name:<22} |S| = {s:>3}   L = {:>5}   B = {:>8}   M = {:>7}   predicted B ~ {:>9.0}",
        r.critical_latency(),
        r.critical_bandwidth(),
        r.max_peak_words(),
        bounds::sparse_bandwidth(g.n(), 49, s),
    );
}

fn main() {
    let n_side = 14; // 196 vertices
    let n = n_side * n_side;
    println!("p = 49 simulated ranks, n = {n} vertices\n");
    println!("{:<22} {:>9}   {:>9}   {:>12}", "workload", "separator", "latency", "bandwidth");

    // separator-friendly: 2-D mesh
    let mesh = grid2d(n_side, n_side, WeightKind::Unit, 1);
    solve("2-D mesh", &mesh);

    // geometric graph: still planar-ish, small separators
    let geo = random_geometric(n, 0.11, WeightKind::Unit, 2);
    solve("random geometric", &geo);

    // separator-hostile: Erdős–Rényi with the same vertex count
    let er = connected_gnp(n, 0.05, WeightKind::Unit, 3);
    solve("Erdős–Rényi G(n, .05)", &er);

    // power-law: hubs make separators large too
    let pl = rmat(8, 4, WeightKind::Unit, 4); // 256 vertices
    solve("R-MAT power law", &pl);

    println!(
        "\nreading: small separators keep both the |S|²log²p bandwidth term \
         and the per-rank memory down;\nthe latency column stays Θ(log²p) \
         for every workload — it never depends on |S| (§5.5)."
    );
}
