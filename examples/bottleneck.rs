//! Bottleneck (widest-path) analysis with the path-algebra layer — the
//! Carré [8] generality the paper's related work points at: the same
//! three-nested-loop closure solves shortest paths, widest paths, and
//! most-reliable paths by swapping the semiring.
//!
//! Scenario: a small data-center fabric; find, for every server pair, the
//! maximum end-to-end throughput (bottleneck capacity) and the most
//! reliable route probability.
//!
//! ```text
//! cargo run --release --example bottleneck
//! ```

use sparse_apsp::minplus::algebra::{closure_in, AlgebraMatrix, MaxMin, MostReliable, PathAlgebra};
use sparse_apsp::prelude::*;

fn main() {
    // fabric: 2 spines (0, 1), 4 leaves (2..6), 6 servers (6..12)
    let mut b = GraphBuilder::new(12);
    // spine ↔ leaf: 40 Gb/s, leaf ↔ server: 10 Gb/s, spine ↔ spine: 100 Gb/s
    b.add_edge(0, 1, 100.0);
    for leaf in 2..6 {
        b.add_edge(0, leaf, 40.0);
        b.add_edge(1, leaf, 40.0);
    }
    for srv in 6..12 {
        let leaf = 2 + (srv - 6) % 4;
        b.add_edge(srv, leaf, 10.0);
    }
    let g = b.build();
    let n = g.n();

    // widest paths: capacities, (max, min)
    let mut cap =
        AlgebraMatrix::<MaxMin>::from_fn(n, |i, j| g.edge_weight(i, j).unwrap_or(MaxMin::ZERO));
    closure_in(&mut cap);

    // reliability: per-link success probability, (max, ×)
    let mut rel = AlgebraMatrix::<MostReliable>::from_fn(n, |i, j| {
        if g.edge_weight(i, j).is_some() {
            0.999
        } else {
            MostReliable::ZERO
        }
    });
    closure_in(&mut rel);

    println!("server-to-server bottleneck throughput / route reliability:");
    for a in 6..9 {
        for z in 9..12 {
            println!(
                "  {a:>2} → {z:>2}: {:>5} Gb/s   p(success) = {:.4}",
                cap.get(a, z),
                rel.get(a, z)
            );
        }
    }

    // sanity: servers on the same leaf bottleneck at the 10 Gb/s edge;
    // different leaves still bottleneck at the server uplink
    assert_eq!(cap.get(6, 10), 10.0);
    assert_eq!(cap.get(6, 7), 10.0);
    // spine-to-spine keeps its full 100 Gb/s
    assert_eq!(cap.get(0, 1), 100.0);

    // and the ordinary shortest-path view of the same fabric, hop counts:
    let run = SparseApsp::with_height(2).run(&{
        let mut hb = GraphBuilder::new(n);
        for (u, v, _) in g.edges() {
            hb.add_edge(u, v, 1.0);
        }
        hb.build()
    });
    println!("\nhop distance 6 → 11: {} (through leaf and spine layers)", run.dist.get(6, 11));
}
