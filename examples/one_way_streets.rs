//! Directed APSP: a downtown street grid where avenues alternate direction
//! (Manhattan-style one-way streets). Weights are asymmetric — the paper's
//! undirected formulation generalizes because the supernodal schedule only
//! needs the *pattern* to be symmetric; the `R⁴` phase computes both block
//! orientations instead of mirroring (`sparse2d_directed`).
//!
//! ```text
//! cargo run --release --example one_way_streets
//! ```

use sparse_apsp::graph::digraph::apsp_dijkstra_directed;
use sparse_apsp::graph::DiGraphBuilder;
use sparse_apsp::prelude::*;

fn main() {
    let side = 10;
    let id = |r: usize, c: usize| r * side + c;
    let mut b = DiGraphBuilder::new(side * side);
    for r in 0..side {
        for c in 0..side {
            // horizontal streets: even rows eastbound, odd rows westbound
            if c + 1 < side {
                if r % 2 == 0 {
                    b.add_arc(id(r, c), id(r, c + 1), 1.0);
                } else {
                    b.add_arc(id(r, c + 1), id(r, c), 1.0);
                }
            }
            // vertical avenues: two-way but slower northbound
            if r + 1 < side {
                b.add_arc(id(r, c), id(r + 1, c), 1.0);
                b.add_arc(id(r + 1, c), id(r, c), 2.0);
            }
        }
    }
    let city = b.build();
    println!(
        "downtown: {} intersections, {} pattern pairs (one-way streets included)",
        city.n(),
        city.pattern_entries() / 2
    );

    let run = SparseApsp::with_height(3).run_directed(&city);
    let reference = apsp_dijkstra_directed(&city);
    assert!(run.dist.first_mismatch(&reference, 1e-9).is_none());
    println!("verified against directed Dijkstra ✓");

    // asymmetry in action: the same two corners, both directions
    let (a, z) = (id(0, 0), id(1, side - 1));
    println!(
        "drive {a} → {z}: {:.0} min   |   {z} → {a}: {:.0} min (one-way detours)",
        run.dist.get(a, z),
        run.dist.get(z, a)
    );
    assert_ne!(run.dist.get(a, z), run.dist.get(z, a));

    println!(
        "communication: L = {} messages, B = {} words on p = 49 simulated ranks",
        run.report.critical_latency(),
        run.report.critical_bandwidth()
    );
}
