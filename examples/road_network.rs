//! A synthetic road network: a perturbed mesh of local streets with a few
//! long-range highways — the workload class (planar-ish, small separators)
//! whose APSP the paper's algorithm accelerates. Computes all-pairs
//! distances on the simulated machine, reconstructs a route, and compares
//! the communication bill against the dense baseline.
//!
//! ```text
//! cargo run --release --example road_network
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sparse_apsp::prelude::*;

/// Builds the road network: `side × side` intersections, street edges with
/// congestion-perturbed travel times, plus `highways` fast long-distance
/// links along grid lines.
fn build_roads(side: usize, highways: usize, seed: u64) -> Csr {
    let mut rng = StdRng::seed_from_u64(seed);
    let id = |r: usize, c: usize| r * side + c;
    let mut b = GraphBuilder::new(side * side);
    for r in 0..side {
        for c in 0..side {
            // street travel time: base 1.0 plus congestion noise
            if c + 1 < side {
                b.add_edge(id(r, c), id(r, c + 1), 1.0 + rng.random::<f64>());
            }
            if r + 1 < side {
                b.add_edge(id(r, c), id(r + 1, c), 1.0 + rng.random::<f64>());
            }
        }
    }
    // highways: straight segments with 0.25×-per-hop cost
    for _ in 0..highways {
        let r = rng.random_range(0..side);
        let c0 = rng.random_range(0..side / 2);
        let c1 = rng.random_range(side / 2..side);
        let hops = (c1 - c0) as f64;
        b.add_edge(id(r, c0), id(r, c1), 0.25 * hops);
    }
    b.build()
}

fn main() {
    let side = 14;
    let g = build_roads(side, 6, 7);
    println!("road network: {} intersections, {} segments", g.n(), g.m());

    // sparse distributed solve (multilevel ND handles the highway shortcuts)
    let solver = SparseApsp::new(SparseApspConfig { height: 3, ..Default::default() });
    let run = solver.run(&g);
    println!("top separator: {} vertices (of {})", run.ordering.top_separator(), g.n());

    // oracle check + route reconstruction straight from the distance matrix
    let reference = oracle::apsp_dijkstra(&g);
    assert!(run.dist.first_mismatch(&reference, 1e-9).is_none());
    let (src, dst) = (0, side * side - 1);
    let route = run.path(&g, src, dst).expect("connected");
    println!(
        "route {src} → {dst}: {:.2} time units via {} intersections",
        run.dist.get(src, dst),
        route.len()
    );
    // cross-check the route against the Dijkstra tree
    let (dist, _) = oracle::dijkstra_with_parents(&g, src);
    assert!((dist[dst] - run.dist.get(src, dst)).abs() < 1e-9);
    let w = sparse_apsp::graph::paths::path_weight(&g, &route).expect("valid hops");
    assert!((w - dist[dst]).abs() < 1e-9);

    // communication: sparse algorithm vs dense baseline on the same machine
    let dense = fw2d(&g, 7);
    assert!(dense.dist.first_mismatch(&reference, 1e-9).is_none());
    let (rs, rd) = (&run.report, &dense.report);
    println!("\n                   2D-SPARSE-APSP    dense blocked FW");
    println!("latency  (msgs)  {:>12}    {:>12}", rs.critical_latency(), rd.critical_latency());
    println!("bandwidth(words) {:>12}    {:>12}", rs.critical_bandwidth(), rd.critical_bandwidth());
    println!("volume   (words) {:>12}    {:>12}", rs.total_words(), rd.total_words());
}
