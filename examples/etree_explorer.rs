//! Prints the paper's structural figures for a chosen graph:
//! Fig. 1 (nested-dissection reordering and the empty-block pattern),
//! Fig. 2/3a (the elimination tree and its bottom-up labels), and
//! Fig. 3b (the `R¹..R⁴` region map of a level).
//!
//! ```text
//! cargo run --release --example etree_explorer [side] [height]
//! ```

use sparse_apsp::prelude::*;

fn region_char(t: &SchedTree, l: u32, i: usize, j: usize) -> char {
    use sparse_apsp::etree::regions;
    if regions::r1(t, l).contains(&(i, j)) {
        return '1';
    }
    if regions::r2(t, l).contains(&(i, j)) {
        return '2';
    }
    if regions::r3(t, l).iter().any(|u| (u.i, u.j) == (i, j)) {
        return '3';
    }
    if regions::r4_upper(t, l).iter().any(|b| (b.i, b.j) == (i, j))
        || regions::r4_mirror(t, l).contains(&(i, j))
    {
        return '4';
    }
    '.'
}

fn main() {
    let mut args = std::env::args().skip(1);
    let side: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let h: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    let g = grid2d(side, side, WeightKind::Unit, 0);
    let nd = grid_nd(side, side, h);
    nd.validate(&g).expect("valid ordering");
    let t = nd.tree;
    let n_super = t.num_supernodes();

    println!("== Fig. 2/3a: elimination tree (h = {h}, N = {n_super}) ==");
    for l in (1..=h).rev() {
        print!("level {l}:");
        for k in t.level_nodes(l) {
            print!(" {k}(|{}|)", nd.supernode_sizes[k - 1]);
        }
        println!();
    }

    println!("\n== Fig. 1d: block sparsity after ND reordering (#finite entries) ==");
    let layout = SupernodalLayout::from_ordering(&nd);
    let gp = g.permuted(&nd.perm);
    let census = layout.empty_block_census(&gp);
    print!("      ");
    for j in 1..=n_super {
        print!("{j:>4}");
    }
    println!();
    for i in 1..=n_super {
        print!("  {i:>2} |");
        for j in 1..=n_super {
            let b = layout.extract_block(&gp, i, j);
            if b.is_empty_block() {
                print!("   .");
            } else {
                print!("{:>4}", b.finite_entries());
            }
        }
        println!();
    }
    println!(
        "{} of {} blocks empty ({} cousin blocks — all empty, as §4.1 requires)",
        census.empty, census.total, census.cousin_blocks
    );

    println!("\n== Fig. 3b: update regions per level (1/2/3/4 = R¹..R⁴, . = untouched) ==");
    for l in 1..=h {
        println!("level {l}:");
        for i in 1..=n_super {
            print!("   ");
            for j in 1..=n_super {
                print!("{}", region_char(&t, l, i, j));
            }
            println!();
        }
    }

    println!("\n== Corollary 5.5: R⁴ computing-unit placement ==");
    for l in 1..h {
        let units = sparse_apsp::etree::mapping::level_units(&t, l);
        println!("level {l}: {} units (Lemma 5.2 bound: ≤ p = {})", units.len(), n_super * n_super);
        for u in units.iter().take(8) {
            println!(
                "   A({},{}) ⊕= A({},{}) ⊗ A({},{})  on  P({},{})",
                u.i, u.j, u.i, u.k, u.k, u.j, u.f, u.g
            );
        }
        if units.len() > 8 {
            println!("   … {} more", units.len() - 8);
        }
    }
}
