//! Quickstart: solve all-pairs shortest paths on a simulated distributed
//! machine and read the communication bill.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sparse_apsp::prelude::*;

fn main() {
    // A 12×12 mesh: 144 vertices, the separator-friendly shape the paper
    // targets (|S| = Θ(√n)).
    let g = grid2d(12, 12, WeightKind::Integer { max: 9 }, 42);
    println!("graph: {} vertices, {} edges", g.n(), g.m());

    // Elimination tree of height 3 → √p = 2³−1 = 7 → p = 49 simulated ranks.
    let solver = SparseApsp::new(SparseApspConfig {
        height: 3,
        ordering: Ordering::Grid { rows: 12, cols: 12 },
        ..Default::default()
    });
    let run = solver.run(&g);

    // Distances come back in the input vertex numbering.
    let (a, b) = (0, 143); // opposite corners
    println!("d({a}, {b}) = {}", run.dist.get(a, b));

    // Verify against the sequential oracle (n Dijkstra runs).
    let reference = oracle::apsp_dijkstra(&g);
    assert!(run.dist.first_mismatch(&reference, 1e-9).is_none());
    println!("verified against Dijkstra ✓");

    // The §3.1 communication bill, measured on the critical path.
    let r = &run.report;
    println!("\ncost report (p = 49):");
    println!("  latency   L = {:>8} messages", r.critical_latency());
    println!("  bandwidth B = {:>8} words", r.critical_bandwidth());
    println!("  memory    M = {:>8} words/rank (peak)", r.max_peak_words());
    println!("  volume      = {:>8} words total", r.total_words());
    println!(
        "\npaper predictions (shape): L ~ log²p = {:.0}, B ~ n²log²p/p + |S|²log²p = {:.0}",
        bounds::sparse_latency(49),
        bounds::sparse_bandwidth(g.n(), 49, run.ordering.max_separator()),
    );
}
