//! A miniature Table 2: measured memory, bandwidth and latency of
//! 2D-SPARSE-APSP vs the dense baselines, swept over the machine size.
//!
//! ```text
//! cargo run --release --example scaling_study [grid_side] [--json]
//! ```
//!
//! With `--json`, each sweep point is emitted as one JSON object per
//! line (machine-readable; same numbers as the table) instead of prose.

use sparse_apsp::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let side: usize =
        args.iter().find(|a| !a.starts_with("--")).and_then(|s| s.parse().ok()).unwrap_or(16);
    let g = grid2d(side, side, WeightKind::Unit, 0);
    let n = g.n();
    let reference = oracle::apsp_dijkstra(&g);

    if !json {
        println!("workload: {side}×{side} mesh (n = {n})\n");
        println!(
            "{:>4} {:>4}  {:>26}  {:>26}  {:>20}",
            "√p", "p", "2D-SPARSE-APSP (L/B/M)", "dense FW-2D (L/B/M)", "lower bounds (L/B)"
        );
    }

    for h in 2..=4u32 {
        let n_grid = (1usize << h) - 1;
        let p = n_grid * n_grid;

        let solver = SparseApsp::new(SparseApspConfig {
            height: h,
            ordering: Ordering::Grid { rows: side, cols: side },
            ..Default::default()
        });
        let sparse = solver.run(&g);
        assert!(sparse.dist.first_mismatch(&reference, 1e-9).is_none());
        let s = sparse.ordering.max_separator();

        let dense = fw2d(&g, n_grid);
        assert!(dense.dist.first_mismatch(&reference, 1e-9).is_none());

        let (rs, rd) = (&sparse.report, &dense.report);
        if json {
            println!(
                "{{\"workload\": \"mesh {side}x{side}\", \"n\": {n}, \"height\": {h}, \
                 \"n_grid\": {n_grid}, \"p\": {p}, \"separator\": {s}, \
                 \"sparse\": {{\"latency\": {}, \"bandwidth\": {}, \"peak_words\": {}}}, \
                 \"dense_fw2d\": {{\"latency\": {}, \"bandwidth\": {}, \"peak_words\": {}}}, \
                 \"lower_bounds\": {{\"latency\": {:.0}, \"bandwidth\": {:.0}}}}}",
                rs.critical_latency(),
                rs.critical_bandwidth(),
                rs.max_peak_words(),
                rd.critical_latency(),
                rd.critical_bandwidth(),
                rd.max_peak_words(),
                bounds::lower_bound_latency(p),
                bounds::lower_bound_bandwidth(n, p, s),
            );
        } else {
            println!(
                "{:>4} {:>4}  {:>8}/{:>8}/{:>7}  {:>8}/{:>8}/{:>7}  {:>8.0}/{:>9.0}",
                n_grid,
                p,
                rs.critical_latency(),
                rs.critical_bandwidth(),
                rs.max_peak_words(),
                rd.critical_latency(),
                rd.critical_bandwidth(),
                rd.max_peak_words(),
                bounds::lower_bound_latency(p),
                bounds::lower_bound_bandwidth(n, p, s),
            );
        }
    }

    if !json {
        println!(
            "\nshapes to look for (paper Table 2): sparse L grows ~log²p while \
             dense L grows ~√p·log p;\nsparse B decays ~1/p (plus the |S|² term) \
             while dense B decays only ~1/√p."
        );
    }
}
