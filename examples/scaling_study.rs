//! A miniature Table 2: measured memory, bandwidth and latency of
//! 2D-SPARSE-APSP vs the dense baselines, swept over the machine size.
//!
//! ```text
//! cargo run --release --example scaling_study [grid_side]
//! ```

use sparse_apsp::prelude::*;

fn main() {
    let side: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(16);
    let g = grid2d(side, side, WeightKind::Unit, 0);
    let n = g.n();
    let reference = oracle::apsp_dijkstra(&g);

    println!("workload: {side}×{side} mesh (n = {n})\n");
    println!(
        "{:>4} {:>4}  {:>26}  {:>26}  {:>20}",
        "√p", "p", "2D-SPARSE-APSP (L/B/M)", "dense FW-2D (L/B/M)", "lower bounds (L/B)"
    );

    for h in 2..=4u32 {
        let n_grid = (1usize << h) - 1;
        let p = n_grid * n_grid;

        let solver = SparseApsp::new(SparseApspConfig {
            height: h,
            ordering: Ordering::Grid { rows: side, cols: side },
            ..Default::default()
        });
        let sparse = solver.run(&g);
        assert!(sparse.dist.first_mismatch(&reference, 1e-9).is_none());
        let s = sparse.ordering.max_separator();

        let dense = fw2d(&g, n_grid);
        assert!(dense.dist.first_mismatch(&reference, 1e-9).is_none());

        let (rs, rd) = (&sparse.report, &dense.report);
        println!(
            "{:>4} {:>4}  {:>8}/{:>8}/{:>7}  {:>8}/{:>8}/{:>7}  {:>8.0}/{:>9.0}",
            n_grid,
            p,
            rs.critical_latency(),
            rs.critical_bandwidth(),
            rs.max_peak_words(),
            rd.critical_latency(),
            rd.critical_bandwidth(),
            rd.max_peak_words(),
            bounds::lower_bound_latency(p),
            bounds::lower_bound_bandwidth(n, p, s),
        );
    }

    println!(
        "\nshapes to look for (paper Table 2): sparse L grows ~log²p while \
         dense L grows ~√p·log p;\nsparse B decays ~1/p (plus the |S|² term) \
         while dense B decays only ~1/√p."
    );
}
