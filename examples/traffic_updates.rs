//! Live traffic updates on a solved road network: when a few road segments
//! speed up (an accident clears, a new ramp opens), the solved all-pairs
//! distance matrix is *updated in place* through cheap broadcasts instead
//! of re-solved — the incremental regime where FW-structured APSP shines.
//!
//! ```text
//! cargo run --release --example traffic_updates
//! ```

use sparse_apsp::core::update::{apply_decreases, DecreasedEdge};
use sparse_apsp::prelude::*;

fn main() {
    // the city: a 12×12 street mesh, travel times 2..9 minutes
    let side = 12;
    let g = grid2d(side, side, WeightKind::Integer { max: 9 }, 11);
    let n = g.n();

    // solve once on 49 simulated ranks
    let nd = grid_nd(side, side, 3);
    let layout = SupernodalLayout::from_ordering(&nd);
    let gp = g.permuted(&nd.perm);
    let solved = sparse2d(&layout, &gp, R4Strategy::OneToOne);
    println!(
        "initial solve: L = {} msgs, B = {} words",
        solved.report.critical_latency(),
        solved.report.critical_bandwidth()
    );
    let dist0 = SupernodalLayout::unpermute(&solved.dist_eliminated, &nd.perm);
    let (a, b) = (0, n - 1);
    println!("before: travel {a} → {b} takes {:.0} min", dist0.get(a, b));

    // a new expressway opens diagonally across town: 3 fast segments
    let upgrades = [(0usize, 52usize, 2.0), (52, 104, 2.0), (104, 143, 2.0)];
    let blocks: Vec<_> = (0..layout.p())
        .map(|rank| {
            let (i, j) = layout.block_of_rank(rank);
            let (ri, rj) = (layout.range(i), layout.range(j));
            sparse_apsp::minplus::MinPlusMatrix::from_fn(ri.len(), rj.len(), |r, c| {
                solved.dist_eliminated.get(ri.start + r, rj.start + c)
            })
        })
        .collect();
    let batch: Vec<DecreasedEdge> = upgrades
        .iter()
        .map(|&(u, v, w)| DecreasedEdge {
            u: nd.perm.to_new(u),
            v: nd.perm.to_new(v),
            new_weight: w,
        })
        .collect();
    let updated = apply_decreases(&layout, &blocks, &batch);
    println!(
        "update ({} segments): L = {} msgs, B = {} words  ({}x less bandwidth than re-solving)",
        upgrades.len(),
        updated.report.critical_latency(),
        updated.report.critical_bandwidth(),
        solved.report.critical_bandwidth() / updated.report.critical_bandwidth().max(1),
    );

    let dist1 = SupernodalLayout::unpermute(&updated.dist_eliminated, &nd.perm);
    println!("after:  travel {a} → {b} takes {:.0} min", dist1.get(a, b));
    assert!(dist1.get(a, b) < dist0.get(a, b), "the expressway must help");

    // verify the updated matrix against a full re-solve of the new city
    let mut builder = GraphBuilder::new(n);
    for (u, v, w) in g.edges() {
        builder.add_edge(u, v, w);
    }
    for &(u, v, w) in &upgrades {
        builder.add_edge(u, v, w);
    }
    let modified = builder.build();
    let reference = oracle::apsp_dijkstra(&modified);
    assert!(dist1.first_mismatch(&reference, 1e-9).is_none());
    println!("updated matrix verified against a full re-solve ✓");
}
